"""Profiler-overhead benchmarks: the continuous-profiling tax.

The sampling profiler is meant to run *always on* in production, so
its budget is strict: under 5% added per-request latency at the
default rate.  Headline numbers, landing in ``BENCH_profiler.json``
via ``bench_record_profiler``:

* ``request_us_profiler_off`` / ``request_us_profiler_on`` — mean
  end-to-end request latency against a live 2-shard service with the
  sampler stopped vs running at ``DEFAULT_HZ``;
* ``overhead_pct`` — the relative latency delta between the two
  (the <5% acceptance number);
* ``self_reported_overhead_pct`` — the profiler's own measurement
  (sampler-pass seconds over wall seconds), the number it exports as
  ``profiler_overhead_ratio`` in production;
* ``sampler_pass_us`` — cost of one sampling pass over all threads;
* ``ledger_snapshot_us`` — cost of one full memory-ledger snapshot
  (every reporter plus RSS), the ``/stats`` memory tax.

The model is the training-free stub from the gateway benchmark so the
numbers measure the serving substrate, not a forward pass.
"""

import time

import numpy as np

from repro.core import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.obs import DEFAULT_PROFILE_HZ
from repro.serving import (ClusterConfig, ResilientSearchService,
                           ServiceConfig)

REQUESTS = 300


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def _build_service() -> ResilientSearchService:
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(_StubModel(), featurizer, dataset,
                                corpus)
    return ResilientSearchService(
        engine,
        ServiceConfig(deadline=5.0,
                      cluster=ClusterConfig(num_shards=2)))


def _query_ingredients(service) -> list:
    engine = service._active.engine
    vocab = engine.featurizer.ingredient_vocab
    names = []
    for recipe in engine.dataset.split("train"):
        for name in recipe.ingredients:
            if name.replace(" ", "_") in vocab and name not in names:
                names.append(name)
            if len(names) >= 2:
                return names
    return names


def _mean_request_s(service, ingredients,
                    requests: int = REQUESTS,
                    warmup: int = 20) -> float:
    for __ in range(warmup):
        service.search_by_ingredients(ingredients, k=3)
    started = time.perf_counter()
    for __ in range(requests):
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.ok
    return (time.perf_counter() - started) / requests


def test_bench_profiler_request_overhead(benchmark,
                                         bench_record_profiler):
    """Headline: relative request slowdown with always-on sampling."""
    service = _build_service()
    ingredients = _query_ingredients(service)
    _mean_request_s(service, ingredients)      # first-touch warmup

    # Measuring a ~2% mean effect under bursty host noise takes
    # care: (a) pair adjacent off/on windows so drift correlates
    # within a pair, (b) alternate which config goes first so a
    # monotonic ramp cannot bias one side, (c) trim the extreme
    # per-pair deltas (bursts) and average the rest.  Medians would
    # hide the effect entirely — only ~7% of requests coincide with
    # a sampling pass, so the cost lives in the mean, not the p50.
    deltas, off_windows, on_windows = [], [], []
    for index in range(96):
        order = ("off", "on") if index % 2 == 0 else ("on", "off")
        pair = {}
        for config in order:
            if config == "on":
                service.start_profiler(DEFAULT_PROFILE_HZ)
            try:
                pair[config] = _mean_request_s(service, ingredients,
                                               requests=80, warmup=5)
            finally:
                if config == "on":
                    service.profiler.stop()
        deltas.append(pair["on"] - pair["off"])
        off_windows.append(pair["off"])
        on_windows.append(pair["on"])
    snapshot = service.profiler.snapshot()

    trim = len(deltas) // 4                    # keep the middle half
    kept = sorted(deltas)[trim:len(deltas) - trim]
    off_s = sorted(off_windows)[len(off_windows) // 2]
    delta_s = sum(kept) / len(kept)
    on_s = off_s + delta_s
    overhead_pct = max(delta_s, 0.0) / off_s * 100.0
    print(f"\nprofiler off: {off_s * 1e6:8.1f} us/request")
    print(f"profiler on:  {on_s * 1e6:8.1f} us/request "
          f"({DEFAULT_PROFILE_HZ:.0f} Hz)")
    print(f"overhead:     {overhead_pct:8.2f} %  (budget < 5%)")
    print(f"self-reported {snapshot['self_overhead']['fraction'] * 100:8.2f} %  "
          f"({snapshot['self_overhead']['per_sample_us']:.0f} us/pass, "
          f"{snapshot['samples']} samples)")

    bench_record_profiler(overhead_pct, name="overhead_pct")
    bench_record_profiler(off_s * 1e6, name="request_us_profiler_off")
    bench_record_profiler(on_s * 1e6, name="request_us_profiler_on")
    bench_record_profiler(
        snapshot["self_overhead"]["fraction"] * 100.0,
        name="self_reported_overhead_pct")
    bench_record_profiler(snapshot["self_overhead"]["per_sample_us"],
                          name="sampler_pass_us")


def test_bench_sampler_pass_cost(benchmark, bench_record_profiler):
    """Cost of one sampling pass over a live multi-thread service."""
    service = _build_service()
    ingredients = _query_ingredients(service)
    service.search_by_ingredients(ingredients, k=3)
    profiler = service.profiler

    benchmark(profiler.sample_once)
    try:
        pass_s = float(benchmark.stats.stats.mean)
    except AttributeError:   # --benchmark-disable
        started = time.perf_counter()
        for __ in range(200):
            profiler.sample_once()
        pass_s = (time.perf_counter() - started) / 200
    bench_record_profiler(pass_s * 1e6, benchmark,
                          name="sampler_pass_us_micro")


def test_bench_ledger_snapshot_cost(benchmark, bench_record_profiler):
    """Cost of one itemized memory snapshot (the /stats memory tax)."""
    service = _build_service()
    ingredients = _query_ingredients(service)
    for __ in range(50):       # populate rings so reporters do work
        service.search_by_ingredients(ingredients, k=3)

    benchmark(service.memory.snapshot)
    try:
        snap_s = float(benchmark.stats.stats.mean)
    except AttributeError:
        started = time.perf_counter()
        for __ in range(100):
            service.memory.snapshot()
        snap_s = (time.perf_counter() - started) / 100
    bench_record_profiler(snap_s * 1e6, benchmark,
                          name="ledger_snapshot_us")
