"""Benchmark regenerating Table 3 — the state-of-the-art comparison.

Trains every scenario once, benchmarks the two-setup evaluation and
asserts the qualitative shape of the paper's Table 3.
"""

from conftest import medr_mean

from repro.experiments import format_results_table, table3


def test_table3_sota_comparison(runner, benchmark):
    for name in table3.TRAINED_SCENARIOS:
        runner.scenario(name)

    results = benchmark.pedantic(table3.run, args=(runner,),
                                 kwargs={"setups": ("1k", "10k")},
                                 rounds=1, iterations=1)
    for setup, per_setup in results.items():
        print()
        print(format_results_table(
            list(per_setup.items()), title=f"Table 3 ({setup} setup)"))

    for setup in ("1k", "10k"):
        r = {name: medr_mean(res) for name, res in results[setup].items()}
        chance = runner._protocol(setup).bag_size / 2

        # Random sits at chance; every trained model beats it clearly.
        assert r["random"] > 0.5 * chance
        for name in ("cca", "adamine_ins", "adamine"):
            assert r[name] < r["random"]

        # Global alignment (CCA) lags the triplet-based models.
        assert r["adamine"] < r["cca"]
        assert r["adamine_ins"] < r["cca"]

        # The full model beats both pairwise baselines.
        assert r["adamine"] < r["pwc_star"]
        assert r["adamine"] < r["pwc_pp"]

        # The semantic-only model is far behind the instance models.
        assert r["adamine_sem"] > r["adamine"]
        assert r["adamine_sem"] > r["adamine_ins"]

        # Text ablations degrade the full model.
        assert r["adamine"] < r["adamine_ingr"]
        assert r["adamine"] < r["adamine_instr"]

        # Adaptive mining is at least as good as plain averaging.
        assert r["adamine"] <= r["adamine_avg"] * 1.10
