"""Benchmark regenerating Table 2 — recipe-to-image qualitative study.

The paper's claim: AdaMine's top-5 neighbourhoods are semantically
coherent (same-class dishes), more so than AdaMine_ins's.
"""

from repro.experiments import table2


def test_table2_recipe_to_image(runner, benchmark):
    runner.scenario("adamine")
    runner.scenario("adamine_ins")

    result = benchmark.pedantic(table2.run, args=(runner,),
                                kwargs={"num_queries": 4, "k": 5},
                                rounds=3, iterations=1)

    print("\nTable 2: top-5 hit relations per recipe query")
    for am, ins in zip(result.adamine, result.adamine_ins):
        print(f"  {am.query_title!r}")
        print(f"    AdaMine     {[h.relation for h in am.hits]}")
        print(f"    AdaMine_ins {[h.relation for h in ins.hits]}")

    adamine_frac = result.mean_same_class_fraction("adamine")
    ins_frac = result.mean_same_class_fraction("adamine_ins")
    print(f"  same-class fraction: AdaMine={adamine_frac:.2f} "
          f"AdaMine_ins={ins_frac:.2f}")

    # Neighbourhoods retrieved by the semantically-trained model are at
    # least as class-coherent as the instance-only model's (paper's
    # Table 2 claim), and far above the chance class-match rate.
    chance = 1.0 / runner.num_classes
    assert adamine_frac > 2 * chance
    assert adamine_frac >= ins_frac - 0.10
