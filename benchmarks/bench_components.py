"""Micro-benchmarks of the substrate components.

These time the hot paths of the reproduction — batch embedding, the
triplet losses + adaptive mining, the retrieval protocol, the dish
renderer, and the recurrent encoders — so performance regressions in
the substrate are caught independently of the experiment results.

Each test reports its headline number through ``bench_record`` (see
``conftest.py``), which exports ``BENCH_components.json`` at session
end via the obs JSON exposition.  The quality-observability overheads
(golden-probe replay, drift-sketch updates, alert evaluation) report
through ``bench_record_serving`` instead and land in
``BENCH_serving.json``.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, l2_normalize
from repro.core import instance_triplet_loss, semantic_triplet_loss
from repro.core.engine import RecipeSearchEngine
from repro.data import (ClassTaxonomy, DatasetConfig, DishRenderer,
                        IngredientLexicon, RecipeFeaturizer,
                        generate_dataset)
from repro.nn import BiLSTM, Conv2d, LSTM
from repro.obs import (AlertManager, BurnRateWindow, GoldenProbe,
                       GoldenSet, MetricsRegistry, QuantileSketch,
                       default_serving_slos)
from repro.retrieval import RetrievalProtocol
from repro.retrieval.index import NearestNeighborIndex
from repro.serving import ResilientSearchService, ServiceConfig


RNG = lambda seed=0: np.random.default_rng(seed)


def test_bench_instance_triplet_loss(benchmark, bench_record):
    rng = RNG(0)
    img = l2_normalize(Tensor(rng.normal(size=(100, 32)),
                              requires_grad=True))
    rec = l2_normalize(Tensor(rng.normal(size=(100, 32)),
                              requires_grad=True))

    def step():
        out = instance_triplet_loss(img, rec, strategy="adaptive")
        return out.beta_prime

    beta_prime = benchmark(step)
    bench_record(beta_prime, benchmark)


def test_bench_semantic_triplet_loss(benchmark, bench_record):
    rng = RNG(1)
    img = l2_normalize(Tensor(rng.normal(size=(100, 32))))
    rec = l2_normalize(Tensor(rng.normal(size=(100, 32))))
    labels = rng.integers(-1, 10, size=100)

    def step():
        out = semantic_triplet_loss(img, rec, labels, rng=RNG(2))
        return out.num_triplets

    triplets = benchmark(step)
    bench_record(triplets, benchmark)


def test_bench_loss_backward(benchmark, bench_record):
    rng = RNG(2)
    raw_img = rng.normal(size=(100, 32))
    raw_rec = rng.normal(size=(100, 32))  # unaligned -> many violations

    def step():
        img = Tensor(raw_img, requires_grad=True)
        rec = Tensor(raw_rec, requires_grad=True)
        out = instance_triplet_loss(l2_normalize(img), l2_normalize(rec))
        out.loss.backward()
        return float(img.grad.sum())

    grad_sum = benchmark(step)
    bench_record(grad_sum, benchmark)


def test_bench_retrieval_protocol_1k(benchmark, bench_record):
    rng = RNG(3)
    img = rng.normal(size=(2000, 32))
    rec = img + rng.normal(0, 0.5, size=img.shape)
    protocol = RetrievalProtocol(bag_size=1000, num_bags=10, seed=0)
    result = benchmark(protocol.evaluate, img, rec)
    assert result.medr() >= 1.0
    bench_record(result.medr(), benchmark)


def test_bench_index_query_loop(benchmark, bench_record):
    """Baseline for the batched path: one ``query`` call per vector."""
    rng = RNG(8)
    index = NearestNeighborIndex(rng.normal(size=(2000, 32)))
    vectors = rng.normal(size=(64, 32))

    def step():
        return sum(len(index.query(v, k=10)[0]) for v in vectors)

    total = benchmark(step)
    assert total == 64 * 10
    bench_record(float(total), benchmark)


def test_bench_index_query_batch(benchmark, bench_record):
    """The vectorized path: all 64 queries in one matmul.  Must beat
    the loop above by a wide margin (the cluster's batched per-shard
    merge path rides on it)."""
    rng = RNG(8)
    index = NearestNeighborIndex(rng.normal(size=(2000, 32)))
    vectors = rng.normal(size=(64, 32))

    ids, distances = benchmark(index.query_batch, vectors, 10)
    assert ids.shape == (64, 10) and distances.shape == (64, 10)
    bench_record(float(distances[:, 0].mean()), benchmark)


def test_bench_dish_renderer(benchmark, bench_record):
    lexicon = IngredientLexicon()
    taxonomy = ClassTaxonomy(16, lexicon)
    renderer = DishRenderer(size=24)
    ingredients = [lexicon[name] for name in taxonomy[0].core]
    rng = RNG(4)
    image = benchmark(renderer.render, taxonomy[0], ingredients, rng)
    assert image.shape == (3, 24, 24)
    bench_record(float(image.mean()), benchmark)


def test_bench_bilstm_forward(benchmark, bench_record):
    rng = RNG(5)
    encoder = BiLSTM(16, 16, rng)
    x = Tensor(rng.normal(size=(50, 10, 16)))
    lengths = rng.integers(3, 11, size=50)
    out = benchmark(encoder, x, lengths)
    assert out.shape == (50, 32)
    bench_record(float(np.abs(out.data).mean()), benchmark)


def test_bench_lstm_forward_backward(benchmark, bench_record):
    rng = RNG(6)
    encoder = LSTM(16, 16, rng)
    raw = rng.normal(size=(50, 8, 16))
    lengths = np.full(50, 8)

    def step():
        x = Tensor(raw, requires_grad=True)
        __, final = encoder(x, lengths)
        final.sum().backward()
        return x.grad is not None

    assert benchmark(step)
    bench_record(1.0, benchmark)


def test_bench_conv2d_forward(benchmark, bench_record):
    rng = RNG(7)
    conv = Conv2d(3, 16, 3, rng, padding=1)
    images = Tensor(rng.normal(size=(32, 3, 24, 24)))
    out = benchmark(conv, images)
    assert out.shape == (32, 16, 24, 24)
    bench_record(float(np.abs(out.data).mean()), benchmark)


# ----------------------------------------------------------------------
# Quality-observability overheads -> BENCH_serving.json
# ----------------------------------------------------------------------
class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Training-free embedder (normalized ingredient-id histograms) so
    the serving benchmarks measure observability cost, not a model."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def _stub_service() -> ResilientSearchService:
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)
    return ResilientSearchService(engine, ServiceConfig(deadline=5.0))


def test_bench_drift_sketch_update(benchmark, bench_record_serving):
    """Cost of folding one batch of live values into a drift sketch."""
    rng = RNG(9)
    values = rng.uniform(0.0, 2.0, size=10_000)
    sketch = QuantileSketch(0.0, 2.0, bins=32)

    def step():
        sketch.update_many(values)
        return sketch.total

    total = benchmark(step)
    assert total >= len(values)
    bench_record_serving(float(len(values)), benchmark)


def test_bench_alert_evaluation(benchmark, bench_record_serving):
    """One burn-rate evaluation pass over the default serving SLOs."""
    registry = MetricsRegistry()
    requests = registry.counter("serving_requests_total",
                                labels=("status",))
    stage = registry.histogram("serving_stage_seconds",
                               labels=("stage",))
    registry.gauge("probe_online_medr").set(2.0)
    registry.gauge("drift_score", labels=("signal",)).labels(
        signal="embedding_norm").set(0.05)
    now = [0.0]
    manager = AlertManager(
        registry, default_serving_slos(),
        windows=(BurnRateWindow("page", 300.0, 3600.0, 14.4),),
        clock=lambda: now[0])

    def step():
        now[0] += 1.0
        requests.labels(status="ok").inc(50)
        requests.labels(status="error").inc()
        stage.labels(stage="index").observe(0.01)
        return len(manager.evaluate()) + len(manager.alerts)

    slos = benchmark(step)
    assert slos >= 4
    bench_record_serving(float(len(manager.alerts)), benchmark)


def test_bench_probe_overhead(benchmark, bench_record_serving):
    """Full golden-probe replay (16 queries) through the live serving
    path — the per-interval cost the probe adds to a running service."""
    service = _stub_service()
    golden = GoldenSet.from_engine(service.engine, size=16, seed=0)
    probe = GoldenProbe(service, golden,
                        registry=service.telemetry.registry,
                        events=service.telemetry.events)
    probe.attach()
    metrics = benchmark(probe.run)
    assert metrics.medr >= 1.0
    bench_record_serving(metrics.medr, benchmark)
