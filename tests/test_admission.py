"""Unit tests for the adaptive admission plane (fast, no chaos).

Everything here runs on the fake clock: token-bucket refills, DRR
rotations, AIMD steps, brownout dwells, and in-queue expiry are all
driven by explicit clock advances, so the suite is deterministic and
sleeps for zero real seconds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Telemetry
from repro.serving import (BROWNOUT_LADDER, AdaptiveLimiter,
                           AdmissionConfig, AdmissionController,
                           BrownoutConfig, BrownoutController, Deadline,
                           FairQueue, ResilientSearchService,
                           RetryPolicy, ServiceConfig, TenantPolicy,
                           TokenBucket)

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)


@pytest.fixture(scope="module")
def world():
    return make_world()


@pytest.fixture(scope="module")
def engine(world):
    dataset, featurizer = world
    return make_engine(dataset, featurizer)


# ----------------------------------------------------------------------
# Deadline edges (satellite: fast-path expiry + remaining_fraction)
# ----------------------------------------------------------------------
class TestDeadlineEdges:
    def test_exactly_zero_remaining_is_expired(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.sleep(1.0)
        assert deadline.remaining() == pytest.approx(0.0)
        assert deadline.expired

    def test_one_tick_before_boundary_is_alive(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.sleep(1.0 - 1e-9)
        assert not deadline.expired
        clock.sleep(2e-9)
        assert deadline.expired

    def test_remaining_fraction_drains_and_clamps(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining_fraction() == pytest.approx(1.0)
        clock.sleep(0.5)
        assert deadline.remaining_fraction() == pytest.approx(0.75)
        clock.sleep(10.0)
        assert deadline.remaining_fraction() == 0.0


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert all(bucket.try_take() for _ in range(3))
        assert not bucket.try_take()
        clock.sleep(0.5)  # 1 token back at 2/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.sleep(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


# ----------------------------------------------------------------------
# Weighted deficit round robin
# ----------------------------------------------------------------------
def drain(queue):
    order = []
    while True:
        served = queue.pop()
        if served is None:
            return order
        order.append(served)


class TestFairQueue:
    def test_weighted_shares_over_backlog(self):
        queue = FairQueue(weights={"a": 3.0, "b": 1.0}, max_depth=100)
        for i in range(40):
            queue.push("a", f"a{i}")
            queue.push("b", f"b{i}")
        first = [tenant for tenant, _ in drain(queue)[:20]]
        # Over any early window, a drains ~3x as often as b.
        assert first.count("a") >= 2.5 * first.count("b")

    def test_strict_tier_priority(self):
        queue = FairQueue(max_depth=10)
        queue.push("bg", "b0", tier=1)
        queue.push("user", "u0", tier=0)
        queue.push("user", "u1", tier=0)
        served = drain(queue)
        assert [item for _, item in served] == ["u0", "u1", "b0"]

    def test_depth_bound_per_tenant(self):
        queue = FairQueue(max_depth=2)
        assert queue.push("a", 1)
        assert queue.push("a", 2)
        assert not queue.push("a", 3)
        assert queue.push("b", 1)  # other lanes unaffected

    def test_drop_if_sheds_dead_heads_without_charging_deficit(self):
        dropped = []
        queue = FairQueue(max_depth=10,
                          drop_if=lambda item: ("expired"
                                                if item < 0 else None),
                          on_drop=lambda tenant, item, reason:
                          dropped.append((tenant, item, reason)))
        queue.push("a", -1)
        queue.push("a", -2)
        queue.push("a", 7)
        tenant, item = queue.pop()
        assert (tenant, item) == ("a", 7)
        assert dropped == [("a", -1, "expired"), ("a", -2, "expired")]
        assert len(queue) == 0

    def test_idle_lane_forfeits_deficit(self):
        queue = FairQueue(weights={"a": 1.0}, max_depth=10)
        queue.push("a", 1)
        drain(queue)
        assert queue.deficit("a") == 0.0

    @settings(max_examples=50, deadline=None)
    @given(weight_a=st.floats(min_value=0.5, max_value=8.0),
           weight_b=st.floats(min_value=0.5, max_value=8.0),
           window=st.integers(min_value=20, max_value=120))
    def test_drr_converges_to_weights_within_bounded_deficit(
            self, weight_a, weight_b, window):
        """DRR invariant: over any dequeue window from a saturated
        backlog, each tenant's served share matches its weight share
        within one quantum's worth of deficit per rotation."""
        queue = FairQueue(weights={"a": weight_a, "b": weight_b},
                          max_depth=10_000)
        for i in range(window * 2):
            queue.push("a", i)
            queue.push("b", i)
        served = [tenant for tenant, _ in
                  [queue.pop() for _ in range(window)]]
        share_a = weight_a / (weight_a + weight_b)
        expected = share_a * window
        # Bounded-deficit: lag never exceeds one quantum*weight top-up
        # plus one unit cost per rotation boundary in the window.
        rotations = window / max(weight_a + weight_b, 1.0) + 2
        slack = max(weight_a, 1.0) + rotations
        assert abs(served.count("a") - expected) <= slack

    @settings(max_examples=50, deadline=None)
    @given(flood=st.integers(min_value=50, max_value=400),
           polite=st.integers(min_value=5, max_value=20))
    def test_flooding_tenant_cannot_starve_a_polite_one(
            self, flood, polite):
        queue = FairQueue(max_depth=1000)  # equal weights
        for i in range(flood):
            queue.push("flood", i)
        for i in range(polite):
            queue.push("polite", i)
        window = [tenant for tenant, _ in
                  [queue.pop() for _ in range(2 * polite)]]
        # Equal weights: the polite tenant gets every other slot until
        # its lane drains, regardless of the flood backlog.
        assert window.count("polite") >= polite - 1


# ----------------------------------------------------------------------
# AIMD limiter
# ----------------------------------------------------------------------
def limiter_config(**overrides):
    defaults = dict(initial_limit=8, min_limit=2, max_limit=16,
                    target_p95_s=0.1, evaluate_every=4,
                    decrease_factor=0.5, increase_step=1.0)
    defaults.update(overrides)
    return AdmissionConfig(**defaults)


class TestAdaptiveLimiter:
    def test_decreases_multiplicatively_above_target(self):
        limiter = AdaptiveLimiter(limiter_config())
        for _ in range(4):
            limiter.on_done(0.5)
        assert limiter.limit == 4
        for _ in range(4):
            limiter.on_done(0.5)
        assert limiter.limit == 2  # floor

    def test_increases_additively_at_or_below_target(self):
        limiter = AdaptiveLimiter(limiter_config())
        for _ in range(8):
            limiter.on_done(0.01)
        assert limiter.limit == 10

    def test_ceiling_clamp(self):
        limiter = AdaptiveLimiter(limiter_config(initial_limit=16))
        for _ in range(40):
            limiter.on_done(0.01)
        assert limiter.limit == 16

    def test_no_step_between_evaluations(self):
        limiter = AdaptiveLimiter(limiter_config())
        for _ in range(3):
            assert not limiter.on_done(0.5)
        assert limiter.limit == 8


# ----------------------------------------------------------------------
# Brownout ladder
# ----------------------------------------------------------------------
def stepped(controller, clock, pressure, steps, dt=0.3):
    for _ in range(steps):
        clock.sleep(dt)
        controller.observe(pressure)


class TestBrownoutController:
    def config(self, **overrides):
        defaults = dict(engage_pressure=1.5, release_pressure=0.8,
                        dwell_s=0.25, release_dwell_s=0.25)
        defaults.update(overrides)
        return BrownoutConfig(**defaults)

    def test_engages_in_ladder_order_one_step_per_dwell(self):
        clock = FakeClock()
        controller = BrownoutController(self.config(), clock=clock)
        controller.observe(5.0)  # arms the dwell, no step yet
        assert controller.level == 0
        stepped(controller, clock, 5.0, len(BROWNOUT_LADDER))
        assert controller.level == len(BROWNOUT_LADDER)
        assert [step for _, step in controller.transitions] == \
            list(BROWNOUT_LADDER)
        assert all(direction == "engage"
                   for direction, _ in controller.transitions)

    def test_releases_in_reverse_order(self):
        clock = FakeClock()
        controller = BrownoutController(self.config(), clock=clock)
        stepped(controller, clock, 5.0, len(BROWNOUT_LADDER) + 1)
        controller.observe(0.1)
        stepped(controller, clock, 0.1, len(BROWNOUT_LADDER))
        assert controller.level == 0
        releases = [step for direction, step in controller.transitions
                    if direction == "release"]
        assert releases == list(reversed(BROWNOUT_LADDER))

    def test_hysteresis_band_holds_level(self):
        clock = FakeClock()
        controller = BrownoutController(self.config(), clock=clock)
        stepped(controller, clock, 5.0, 2)
        level = controller.level
        assert level >= 1
        stepped(controller, clock, 1.0, 10)  # between thresholds
        assert controller.level == level

    def test_pressure_blip_does_not_step(self):
        clock = FakeClock()
        controller = BrownoutController(self.config(), clock=clock)
        controller.observe(5.0)
        clock.sleep(0.1)        # shorter than dwell_s
        controller.observe(0.1)  # cooled before dwell elapsed
        clock.sleep(0.3)
        controller.observe(5.0)  # hot again: dwell re-arms from zero
        assert controller.level == 0

    def test_burn_rate_engages_without_pressure(self):
        clock = FakeClock()
        controller = BrownoutController(
            self.config(engage_burn=14.4), clock=clock)
        controller.observe(0.1, burn=20.0)
        clock.sleep(0.3)
        controller.observe(0.1, burn=20.0)
        assert controller.level == 1

    def test_active_reflects_prefix_of_ladder(self):
        clock = FakeClock()
        controller = BrownoutController(self.config(), clock=clock)
        controller.observe(5.0)  # arm the dwell
        stepped(controller, clock, 5.0, 2)
        assert controller.level == 2
        assert controller.active("hedge_off")
        assert controller.active("shrink_k")
        assert not controller.active("degraded")
        assert not controller.active("no_such_step")

    def test_transitions_emit_events_and_metrics(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        controller = BrownoutController(
            self.config(), clock=clock,
            registry=telemetry.registry, events=telemetry.events)
        controller.observe(5.0)  # arm the dwell
        stepped(controller, clock, 5.0, 2)
        gauge = telemetry.registry.gauge(
            "brownout_level",
            "active degradation-ladder level (0 = full quality)")
        assert gauge.value == 2
        records = telemetry.events.of_type("brownout")
        assert len(records) == 2
        assert [r["step"] for r in records] == ["hedge_off", "shrink_k"]


# ----------------------------------------------------------------------
# The composed controller
# ----------------------------------------------------------------------
def make_controller(clock=None, **overrides):
    clock = clock or FakeClock()
    defaults = dict(initial_limit=2, min_limit=1, max_queue_depth=4,
                    poll_interval_s=0.001)
    defaults.update(overrides)
    config = AdmissionConfig(**defaults)
    return AdmissionController(config, clock=clock,
                               sleep=clock.sleep), clock


class TestAdmissionController:
    def test_grants_immediately_under_limit(self):
        controller, clock = make_controller()
        decision = controller.acquire(
            "default", "user", Deadline(1.0, clock=clock))
        assert decision.admitted
        assert controller.inflight == 1
        controller.release(0.01)
        assert controller.inflight == 0

    def test_waiting_request_granted_on_release(self):
        controller, clock = make_controller(initial_limit=1)
        first = controller.acquire("default", "user",
                                   Deadline(5.0, clock=clock))
        assert first.admitted

        released = []

        def sleep_then_release(seconds):
            clock.sleep(seconds)
            if not released:
                released.append(True)
                controller.release(0.01)

        controller._sleep = sleep_then_release
        second = controller.acquire("default", "user",
                                    Deadline(5.0, clock=clock))
        assert second.admitted
        assert second.queue_wait_s > 0.0
        assert controller.inflight == 1

    def test_queue_full_sheds_with_reason(self):
        controller, clock = make_controller(
            initial_limit=1, max_queue_depth=1)
        assert controller.acquire("default", "user",
                                  Deadline(5.0, clock=clock)).admitted
        # One waiter fits; park it as an abandoned-in-queue ticket by
        # expiring it later — here we just fill the lane synchronously.
        controller._lock.acquire()
        ok = controller._queue.push(
            "default", object.__new__(object), tier=0)
        controller._lock.release()
        assert ok
        decision = controller.acquire("default", "user",
                                      Deadline(5.0, clock=clock))
        assert not decision.admitted
        assert decision.reason == "queue_full"

    def test_rate_limited_tenant_shed_at_front_door(self):
        controller, clock = make_controller(
            initial_limit=8,
            tenants=(TenantPolicy("flood", rate=1.0, burst=2.0),))
        deadline = lambda: Deadline(5.0, clock=clock)
        outcomes = [controller.acquire("flood", "user", deadline())
                    for _ in range(4)]
        granted = [d for d in outcomes if d.admitted]
        shed = [d for d in outcomes if not d.admitted]
        assert len(granted) == 2  # burst
        assert all(d.reason == "rate_limit" for d in shed)
        assert controller.inflight == 2

    def test_expires_in_queue_without_taking_a_slot(self):
        controller, clock = make_controller(initial_limit=1)
        assert controller.acquire("default", "user",
                                  Deadline(9.0, clock=clock)).admitted
        decision = controller.acquire("default", "user",
                                      Deadline(0.01, clock=clock))
        assert not decision.admitted
        assert decision.reason == "expired"
        assert controller.inflight == 1
        controller.release(0.01)
        # The abandoned ticket must not be granted a slot later.
        assert controller.inflight == 0

    def test_granted_but_expired_hands_slot_back(self):
        controller, clock = make_controller(initial_limit=1)
        assert controller.acquire("default", "user",
                                  Deadline(9.0, clock=clock)).admitted
        released = []

        def sleep_release_then_expire(seconds):
            if not released:
                released.append(True)
                controller.release(0.01)  # grants the waiter a slot...
                clock.sleep(0.2)          # ...but its budget dies first
            else:
                clock.sleep(seconds)

        controller._sleep = sleep_release_then_expire
        decision = controller.acquire("default", "user",
                                      Deadline(0.1, clock=clock))
        assert not decision.admitted
        assert decision.reason == "expired"
        # The handed-back slot is free for the next request.
        assert controller.acquire("default", "user",
                                  Deadline(9.0, clock=clock)).admitted

    def test_shed_background_tier_under_deep_brownout(self):
        controller, clock = make_controller(
            initial_limit=1, max_queue_depth=16,
            brownout=BrownoutConfig(dwell_s=0.0, release_dwell_s=0.5))
        assert controller.acquire("default", "user",
                                  Deadline(9.0, clock=clock)).admitted
        # Drive pressure via queue_full-free observes: pile queued
        # tickets through expired acquires, stepping the full ladder.
        for _ in range(len(BROWNOUT_LADDER) + 1):
            clock.sleep(0.1)
            controller.acquire("default", "user",
                               Deadline(0.01, clock=clock))
        assert controller.brownout.active("shed_background")
        decision = controller.acquire("probe", "background",
                                      Deadline(9.0, clock=clock))
        assert not decision.admitted
        assert decision.reason == "brownout"
        # User traffic still queues/grants normally.
        controller.release(0.01)
        assert controller.acquire("default", "user",
                                  Deadline(9.0, clock=clock)).admitted

    def test_snapshot_shape(self):
        controller, clock = make_controller()
        controller.acquire("default", "user", Deadline(1.0, clock=clock))
        snapshot = controller.snapshot()
        assert snapshot["mode"] == "adaptive"
        assert snapshot["inflight"] == 1
        assert snapshot["limit"] == 2
        assert snapshot["brownout"] == "full"


# ----------------------------------------------------------------------
# Service integration (adaptive + legacy static paths)
# ----------------------------------------------------------------------
def make_service(engine, clock=None, **overrides):
    clock = clock or FakeClock()
    config = ServiceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        **overrides)
    return ResilientSearchService(engine, config, clock=clock,
                                  sleep=clock.sleep,
                                  rng=random.Random(0)), clock


class TestServiceAdmission:
    def test_adaptive_mode_serves_and_reports(self, engine):
        service, _ = make_service(
            engine, admission=AdmissionConfig(initial_limit=4))
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3, tenant="mobile")
        assert response.ok
        assert response.outcome.tenant == "mobile"
        assert response.outcome.shed_reason is None
        stats = service.stats()
        assert stats["admission"]["mode"] == "adaptive"
        assert stats["inflight"] == 0

    def test_rate_limit_shed_reaches_outcome_and_counter(self, engine):
        service, _ = make_service(
            engine, admission=AdmissionConfig(
                tenants=(TenantPolicy("flood", rate=0.5, burst=1.0),)))
        query = known_ingredients(engine)
        first = service.search_by_ingredients(query, k=3,
                                              tenant="flood")
        assert first.ok
        second = service.search_by_ingredients(query, k=3,
                                               tenant="flood")
        assert second.outcome.status == "shed"
        assert second.outcome.shed_reason == "rate_limit"
        assert second.outcome.tenant == "flood"
        counter = service.telemetry.registry.counter(
            "requests_shed_total",
            "requests shed at admission by reason and tenant",
            labels=("reason", "tenant"))
        assert counter.labels(reason="rate_limit",
                              tenant="flood").value == 1

    def test_static_path_keeps_legacy_semantics(self, engine):
        service, _ = make_service(engine, max_inflight=0)
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3)
        outcome = response.outcome
        assert outcome.status == "shed"
        assert outcome.shed_reason == "inflight_limit"
        assert "load shed" in outcome.error
        assert service.stats()["admission"]["mode"] == "static"

    def test_background_criticality_routes_to_lower_tier(self, engine):
        service, _ = make_service(
            engine, admission=AdmissionConfig(initial_limit=4))
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3, tenant="probe",
            criticality="background")
        assert response.ok
