"""Integration tests: the experiment harness regenerates every
table/figure end-to-end at test scale."""

import numpy as np
import pytest

from repro.experiments import (PAPER_REFERENCE, ExperimentRunner, SCALES,
                               format_metric, format_results_table,
                               get_scale, result_row)
from repro.experiments import (figure3, figure4, table1, table2, table3,
                               table4, table5)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="test")


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"test", "bench", "full"}

    def test_get_scale_by_name(self):
        assert get_scale("test").name == "test"

    def test_get_scale_passthrough(self):
        scale = SCALES["test"]
        assert get_scale(scale) is scale

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            get_scale("galactic")


class TestRunner:
    def test_corpora_built(self, runner):
        assert len(runner.train_corpus) > len(runner.val_corpus)
        assert len(runner.test_corpus) > 0
        assert runner.num_classes == 6

    def test_scenario_cached(self, runner):
        first = runner.scenario("adamine_ins")
        second = runner.scenario("adamine_ins")
        assert first is second

    def test_trainer_history_available(self, runner):
        trainer = runner.trainer("adamine_ins")
        assert len(trainer.history) == runner.scale.training.epochs

    def test_evaluate_returns_both_directions(self, runner):
        result = runner.evaluate("adamine_ins", setup="1k")
        assert result.image_to_recipe["MedR"][0] >= 1.0
        assert result.recipe_to_image["MedR"][0] >= 1.0

    def test_invalid_setup_raises(self, runner):
        with pytest.raises(ValueError):
            runner.evaluate("adamine_ins", setup="100k")

    def test_random_baseline_near_chance(self, runner):
        result = runner.random_result(setup="1k")
        chance = runner._protocol("1k").bag_size / 2
        assert result.medr() > 0.4 * chance

    def test_cca_baseline_beats_random(self, runner):
        cca = runner.cca_result(setup="1k")
        random = runner.random_result(setup="1k")
        assert cca.medr() < random.medr()

    def test_trained_model_beats_random(self, runner):
        trained = runner.evaluate("adamine_ins", setup="10k")
        random = runner.random_result(setup="10k")
        assert trained.medr() < random.medr()


class TestTableModules:
    def test_table1(self, runner):
        results = table1.run(runner)
        assert set(results) == set(table1.SCENARIOS)
        for result in results.values():
            assert np.isfinite(result.medr())

    def test_table2(self, runner):
        result = table2.run(runner, num_queries=3, k=4)
        assert len(result.adamine) == 3
        assert len(result.adamine_ins) == 3
        assert 0.0 <= result.mean_same_class_fraction("adamine") <= 1.0

    def test_table3_smallest(self, runner):
        results = table3.run(runner, setups=("1k",))
        assert "random" in results["1k"]
        assert "cca" in results["1k"]
        assert "adamine" in results["1k"]
        # chance stays far behind the trained full model
        assert (results["1k"]["adamine"].medr()
                < results["1k"]["random"].medr())

    def test_table4(self, runner):
        results = table4.run(runner, ingredients=("mushrooms", "olives"),
                             class_name="pizza", k=4)
        for result in results.values():
            assert len(result.hits) == 4

    def test_table5(self, runner):
        result = table5.run(runner, ingredient="butter", max_queries=2)
        assert len(result.comparisons) >= 1
        assert 0.0 <= result.mean_with_rate <= 1.0

    def test_figure3(self, runner):
        result = figure3.run(runner, pairs_per_class=6, num_classes=3,
                             tsne_iterations=40)
        assert result.adamine.coordinates.shape[1] == 2
        assert 0.0 <= result.adamine.knn_purity <= 1.0
        assert result.adamine.separation > 0

    def test_figure4(self, runner):
        points = figure4.run(runner, lambdas=(0.1, 0.7))
        assert [p.lambda_sem for p in points] == [0.1, 0.7]


class TestFormatting:
    def test_format_metric(self):
        assert format_metric(13.24, 0.46) == "13.2±0.5"

    def test_result_row_contains_name(self, runner):
        result = runner.random_result()
        assert "random" in result_row("random", result)

    def test_table_has_header_and_rows(self, runner):
        result = runner.random_result()
        text = format_results_table([("random", result)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "MedR" in lines[1]
        assert "random" in lines[-1]

    def test_paper_reference_shape(self):
        assert PAPER_REFERENCE["1k"]["adamine"] == (1.0, 1.0)
        assert PAPER_REFERENCE["10k"]["adamine"] == (13.2, 12.2)


class TestMainEntrypoints:
    """Each experiment module is runnable as a CLI (python -m ...)."""

    @pytest.mark.parametrize("module", [table1, table2, table4, figure4])
    def test_main_runs(self, module, capsys, monkeypatch):
        module.main(["--scale", "test"])
        output = capsys.readouterr().out
        assert len(output) > 0
