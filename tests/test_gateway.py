"""Tier-1 gateway logic tests: no sockets, no real time.

The pure pieces of the HTTP gateway — request normalization, the
query fingerprint, ``X-Deadline-Ms`` parsing, and the swap-aware
result cache — are deterministic functions and run in the default
suite.  Everything that needs a live socket lives in
``test_gateway_chaos.py`` behind the ``gateway`` marker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ServiceConfig
from repro.serving.gateway import (BadRequest, CacheConfig, ResultCache,
                                   SHED_STATUS_CODES, STATUS_CODES,
                                   normalize_search_request,
                                   parse_deadline_header,
                                   query_fingerprint)
from repro.serving.service import ResilientSearchService, STATUSES

from ._serving_util import FakeClock, known_ingredients, make_engine, \
    make_world


# ----------------------------------------------------------------------
# normalize_search_request
# ----------------------------------------------------------------------
def test_normalize_fills_defaults():
    normalized = normalize_search_request(
        {"ingredients": ["chicken", "garlic"]})
    assert normalized == {"kind": "ingredients",
                          "ingredients": ["chicken", "garlic"],
                          "recipe_id": None, "without": None,
                          "k": 5, "class_name": None}


def test_normalize_recipe_and_without_kinds():
    assert normalize_search_request({"recipe_id": 3})["kind"] == "recipe"
    normalized = normalize_search_request(
        {"recipe_id": 3, "without": "peanuts", "k": 7})
    assert normalized["kind"] == "without"
    assert normalized["without"] == "peanuts"
    assert normalized["k"] == 7


def test_normalize_accepts_integral_float_k():
    assert normalize_search_request(
        {"ingredients": ["a"], "k": 5.0})["k"] == 5


@pytest.mark.parametrize("payload", [
    [],                                      # not an object
    {},                                      # neither query kind
    {"ingredients": []},                     # empty list
    {"ingredients": ["a", 3]},               # non-string entry
    {"ingredients": "chicken"},              # not a list
    {"recipe_id": "3"},                      # stringly-typed id
    {"recipe_id": True},                     # bool is not an int here
    {"recipe_id": 1, "without": 2},          # non-string without
    {"ingredients": ["a"], "k": 0},          # k out of range
    {"ingredients": ["a"], "k": 101},
    {"ingredients": ["a"], "k": 2.5},        # fractional k
    {"ingredients": ["a"], "k": True},
    {"ingredients": ["a"], "class_name": 7},
])
def test_normalize_rejects_malformed(payload):
    with pytest.raises(BadRequest) as err:
        normalize_search_request(payload)
    assert err.value.status == 400


# ----------------------------------------------------------------------
# query fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_ignores_key_order_and_whitespace():
    a = query_fingerprint({"kind": "ingredients", "k": 5,
                           "ingredients": ["roast  chicken"]})
    b = query_fingerprint({"ingredients": [" roast chicken "], "k": 5.0,
                           "kind": "ingredients"})
    assert a == b


def test_fingerprint_distinguishes_different_queries():
    base = {"kind": "ingredients", "ingredients": ["chicken"], "k": 5}
    assert query_fingerprint(base) != query_fingerprint(
        {**base, "k": 6})
    assert query_fingerprint(base) != query_fingerprint(
        {**base, "ingredients": ["beef"]})


_scalar = st.one_of(st.booleans(), st.integers(-5, 5),
                    st.text(" \tab", max_size=6), st.none())
_request = st.fixed_dictionaries({
    "ingredients": st.lists(st.text(" chicken garlic", min_size=1,
                                    max_size=12), min_size=1,
                            max_size=4),
    "k": st.integers(1, 100),
    "class_name": st.one_of(st.none(), st.text(max_size=5)),
    "extra": _scalar,
})


@settings(max_examples=60, deadline=None)
@given(request=_request, data=st.data())
def test_fingerprint_stable_under_permutation(request, data):
    """Reordered keys + renormalized whitespace never change the
    fingerprint; the digest is over semantics, not wire bytes."""
    keys = data.draw(st.permutations(list(request)))
    shuffled = {key: request[key] for key in keys}
    # Perturb whitespace in every string the same way a client with a
    # different serializer might: runs of blanks collapse.
    def pad(value):
        if isinstance(value, str):
            return "  " + value.replace(" ", "   ") + " "
        if isinstance(value, list):
            return [pad(v) for v in value]
        return value
    padded = {key: pad(value) for key, value in shuffled.items()}
    assert query_fingerprint(request) == query_fingerprint(padded)


# ----------------------------------------------------------------------
# X-Deadline-Ms parsing
# ----------------------------------------------------------------------
def test_deadline_header_absent_is_default():
    assert parse_deadline_header(None, 10000.0) == (None, "default")
    assert parse_deadline_header("   ", 10000.0) == (None, "default")


def test_deadline_header_parses_and_clamps():
    assert parse_deadline_header("250", 10000.0) == (0.25, "header")
    # A client cannot buy more budget than the server maximum.
    assert parse_deadline_header("60000", 10000.0) == (10.0, "header")


@pytest.mark.parametrize("raw", ["soon", "12x", "", "-5", "0", "nan"])
def test_deadline_header_rejects_garbage(raw):
    if not raw.strip():
        assert parse_deadline_header(raw, 1000.0) == (None, "default")
        return
    with pytest.raises(BadRequest) as err:
        parse_deadline_header(raw, 1000.0)
    assert err.value.status == 400
    assert err.value.reason == "bad_deadline"


def test_status_maps_cover_every_outcome():
    assert set(STATUS_CODES) == set(STATUSES) - {"shed"}
    from repro.serving import SHED_REASONS
    assert set(SHED_STATUS_CODES) == set(SHED_REASONS)


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def cache(clock):
    return ResultCache(CacheConfig(capacity=3, ttl_s=10.0,
                                   stale_ttl_s=30.0), clock=clock)


def test_cache_hit_requires_store(cache):
    assert cache.get("t", "fp", 0) is None
    cache.put("t", "fp", 0, {"results": [1]})
    body, state = cache.get("t", "fp", 0)
    assert state == "fresh"
    assert body == {"results": [1]}


def test_cache_is_tenant_scoped(cache):
    cache.put("alice", "fp", 0, {"results": [1]})
    assert cache.get("bob", "fp", 0) is None


def test_cache_ttl_expiry(cache, clock):
    cache.put("t", "fp", 0, {"results": [1]})
    clock.now += 9.9
    assert cache.get("t", "fp", 0)[1] == "fresh"
    clock.now += 0.2  # past ttl_s
    assert cache.get("t", "fp", 0) is None


def test_cache_generation_bump_invalidates(cache):
    cache.put("t", "fp", 0, {"results": [1]})
    # Hot-swap: the serving generation moves on; the entry is not
    # expired by time but may never be served as fresh again.
    assert cache.get("t", "fp", 1) is None
    stale = cache.get("t", "fp", 1, allow_stale=True)
    assert stale is not None and stale[1] == "stale"


def test_cache_stale_only_when_allowed(cache, clock):
    cache.put("t", "fp", 0, {"results": [1]})
    clock.now += 15.0  # expired, within stale window
    assert cache.get("t", "fp", 0) is None
    body, state = cache.get("t", "fp", 0, allow_stale=True)
    assert state == "stale"
    clock.now += 30.0  # past ttl_s + stale_ttl_s
    assert cache.get("t", "fp", 0, allow_stale=True) is None
    assert len(cache) == 0  # too-old entry was dropped


def test_cache_lru_eviction(cache):
    for i in range(3):
        cache.put("t", f"fp{i}", 0, {"i": i})
    cache.get("t", "fp0", 0)  # refresh fp0's recency
    cache.put("t", "fp3", 0, {"i": 3})
    assert cache.get("t", "fp1", 0) is None  # the coldest went
    assert cache.get("t", "fp0", 0) is not None
    assert len(cache) == 3


def test_cache_invalidate_drops_everything(cache):
    cache.put("t", "a", 0, {})
    cache.put("t", "b", 0, {})
    assert cache.invalidate() == 2
    assert len(cache) == 0


def test_cache_returns_copies(cache):
    cache.put("t", "fp", 0, {"results": [1]})
    body, _ = cache.get("t", "fp", 0)
    body["cache"] = "hit"  # gateway annotates its copy
    assert "cache" not in cache.get("t", "fp", 0)[0]


# ----------------------------------------------------------------------
# deadline_source on RequestOutcome
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    dataset, featurizer = make_world(num_pairs=40)
    engine = make_engine(dataset, featurizer)
    return ResilientSearchService(engine, ServiceConfig(deadline=2.0))


def test_deadline_source_default_vs_caller(service):
    ingredients = known_ingredients(service.engine)
    default = service.search_by_ingredients(ingredients)
    assert default.outcome.deadline_source == "default"
    chosen = service.search_by_ingredients(ingredients, deadline=1.5)
    assert chosen.outcome.deadline_source == "caller"
    tagged = service.search_by_ingredients(
        ingredients, deadline=1.5, deadline_source="header")
    assert tagged.outcome.deadline_source == "header"
