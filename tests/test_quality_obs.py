"""Tests for the quality-observability layer: histogram quantiles,
registry-wide non-finite sanitization, drift sketches and scores,
golden probes, burn-rate alerting, the flight recorder, and the
``repro monitor`` CLI.

Run alone with ``pytest -m obs``.  The full chaos scenarios (stale
swap firing the quality SLO, drift faults) live in
``test_slo_chaos.py`` under the ``slo`` marker.
"""

import json
import math
import threading

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.obs import (SLO, AlertManager, BurnRateWindow, DriftMonitor,
                       DriftReference, EventLog, FlightRecorder,
                       GoldenProbe, GoldenSet, MetricError,
                       MetricsRegistry, QuantileSketch, Telemetry,
                       ks_statistic, parse_prometheus, psi,
                       quantile_from_counts)
from repro.obs.drift import DRIFT_SIGNALS
from repro.retrieval.metrics import RetrievalMetrics

from ._serving_util import FakeClock, make_engine, make_world

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# Histogram quantile estimation (satellite 1)
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_interpolates_within_bucket(self):
        # counts: (0, 0.1]=1, (0.1, 0.5]=2, (0.5, 1.0]=1, +Inf=1
        value = quantile_from_counts((0.1, 0.5, 1.0), [1, 2, 1, 1], 0.5)
        # rank 2.5 lands in the second bucket at (2.5-1)/2 of its width
        assert value == pytest.approx(0.1 + 0.4 * 0.75)

    def test_first_bucket_interpolates_from_zero(self):
        value = quantile_from_counts((1.0, 2.0), [2, 0, 0], 0.5)
        assert value == pytest.approx(0.5)

    def test_overflow_bucket_returns_highest_boundary(self):
        assert quantile_from_counts((0.1, 1.0), [0, 0, 5], 0.99) == 1.0

    def test_empty_histogram_is_nan(self):
        assert math.isnan(quantile_from_counts((1.0,), [0, 0], 0.5))

    def test_invalid_inputs_raise(self):
        with pytest.raises(MetricError):
            quantile_from_counts((1.0,), [1, 1], 1.5)
        with pytest.raises(MetricError):
            quantile_from_counts((1.0, 2.0), [1, 1], 0.5)

    def test_histogram_method_matches_module_function(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds",
                                       buckets=(0.1, 0.5, 1.0)).labels()
        for value in (0.05, 0.2, 0.3, 0.7, 2.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == pytest.approx(
            quantile_from_counts(histogram.boundaries,
                                 histogram.bucket_counts(), 0.5))
        quantiles = histogram.quantiles((0.5, 0.99))
        assert set(quantiles) == {0.5, 0.99}
        assert quantiles[0.99] == 1.0     # overflow bucket

    def test_service_stats_reports_stage_quantiles(self):
        from repro.serving import ResilientSearchService, ServiceConfig
        dataset, featurizer = make_world(num_pairs=24)
        engine = make_engine(dataset, featurizer)
        clock = FakeClock()
        service = ResilientSearchService(
            engine, ServiceConfig(deadline=5.0), clock=clock,
            sleep=clock.sleep,
            telemetry=Telemetry(clock=clock))
        recipe = engine.dataset[int(engine.corpus.recipe_indices[0])]
        assert service.search_by_recipe(recipe, k=3).ok
        stage = service.stats()["stage_latency_ms"]["embed"]
        assert stage["count"] == 1
        for key in ("total_ms", "mean_ms", "p50_ms", "p95_ms",
                    "p99_ms"):
            assert key in stage


# ----------------------------------------------------------------------
# Registry-wide non-finite sanitization (satellite 2, regression)
# ----------------------------------------------------------------------
class TestNonFiniteGuards:
    def test_gauge_keeps_last_finite_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.set(float("nan"))
        gauge.set(float("inf"))
        assert gauge.value == 3.0

    def test_counter_drops_non_finite_increments(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(2.0)
        counter.inc(float("nan"))
        counter.inc(float("inf"))
        assert counter.value == 2.0

    def test_histogram_drops_non_finite_observations(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0,)).labels()
        histogram.observe(0.5)
        histogram.observe(float("nan"))
        histogram.observe(float("-inf"))
        assert histogram.count == 1
        assert histogram.sum == 0.5

    def test_poisoned_registry_exposes_no_non_finite_text(self):
        registry = MetricsRegistry()
        registry.gauge("medr").set(float("nan"))
        registry.counter("c_total").inc(float("inf"))
        registry.histogram("h").observe(float("nan"))
        parsed = parse_prometheus(registry.to_prometheus())
        for family in parsed.values():
            for value in family.values():
                assert math.isfinite(value)
        # The JSON snapshot must be strictly valid JSON too.
        json.dumps(registry.to_dict(), allow_nan=False)

    def test_event_fields_are_sanitized_in_buffer_and_sink(self):
        sunk = []
        log = EventLog(clock=lambda: 1.0, sink=sunk.append)
        record = log.emit("epoch", val_medr=float("nan"),
                          nested={"inf": float("inf"), "ok": 2.0},
                          values=[1.0, float("nan")])
        assert record["val_medr"] is None
        assert record["nested"] == {"inf": None, "ok": 2.0}
        assert record["values"] == [1.0, None]
        assert sunk[0] is record


# ----------------------------------------------------------------------
# Exposition round-trips under concurrency (satellite 4)
# ----------------------------------------------------------------------
class TestExpositionUnderConcurrency:
    def test_round_trips_survive_concurrent_writers(self):
        registry = MetricsRegistry()
        counter = registry.counter("work_total", labels=("worker",))
        gauge = registry.gauge("depth")
        histogram = registry.histogram("lat_seconds",
                                       buckets=(0.01, 0.1, 1.0))
        errors = []
        stop = threading.Event()

        def writer(worker: int) -> None:
            try:
                for i in range(400):
                    counter.labels(worker=worker).inc()
                    gauge.set(i)
                    histogram.observe(i * 0.001)
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    parse_prometheus(registry.to_prometheus())
                    MetricsRegistry.from_dict(registry.to_dict())
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        total = sum(
            child.value
            for _, child in registry.get("work_total").children())
        assert total == 4 * 400
        # Final state must survive both round-trips exactly.
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["work_total"][(("worker", "0"),)] == 400
        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()

    def test_parse_prometheus_reads_new_gauge_families(self):
        registry = MetricsRegistry()
        registry.gauge("probe_online_medr").set(3.0)
        registry.gauge("drift_score", labels=("signal",)).labels(
            signal="margin").set(0.4)
        registry.gauge("slo_burn_rate",
                       labels=("slo", "window")).labels(
            slo="availability", window="page").set(15.2)
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["probe_online_medr"][()] == 3.0
        assert parsed["drift_score"][(("signal", "margin"),)] == 0.4
        assert parsed["slo_burn_rate"][
            (("slo", "availability"), ("window", "page"))] == 15.2


# ----------------------------------------------------------------------
# Drift sketches and scores
# ----------------------------------------------------------------------
class TestQuantileSketch:
    def test_counts_clamp_to_edge_bins(self):
        sketch = QuantileSketch(0.0, 1.0, bins=4)
        sketch.update(-5.0)
        sketch.update(0.1)
        sketch.update(99.0)
        sketch.update(float("nan"))
        assert sketch.total == 3
        assert sketch.counts[0] == 2      # -5.0 clamped + 0.1
        assert sketch.counts[-1] == 1     # 99.0 clamped

    def test_update_many_matches_scalar_updates(self):
        values = np.linspace(-0.5, 2.5, 101)
        batch = QuantileSketch(0.0, 2.0, bins=8)
        scalar = QuantileSketch(0.0, 2.0, bins=8)
        batch.update_many(values)
        for value in values:
            scalar.update(value)
        assert np.array_equal(batch.counts, scalar.counts)

    def test_serialization_round_trip_and_spawn(self):
        sketch = QuantileSketch(0.0, 2.0, bins=8)
        sketch.update_many([0.1, 0.5, 1.9])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert np.array_equal(clone.counts, sketch.counts)
        empty = sketch.spawn()
        assert empty.total == 0
        assert (empty.lo, empty.hi, empty.bins) == (
            sketch.lo, sketch.hi, sketch.bins)

    def test_psi_and_ks_separate_same_from_shifted(self):
        rng = np.random.default_rng(0)
        reference = QuantileSketch(0.0, 2.0, bins=16)
        reference.update_many(rng.normal(0.5, 0.1, 2000))
        same = reference.spawn()
        same.update_many(rng.normal(0.5, 0.1, 2000))
        shifted = reference.spawn()
        shifted.update_many(rng.normal(1.5, 0.1, 2000))
        assert psi(reference, same) < 0.05
        assert psi(reference, shifted) > 1.0
        assert ks_statistic(reference, same) < 0.05
        assert ks_statistic(reference, shifted) > 0.9

    def test_mismatched_bins_raise(self):
        a = QuantileSketch(0.0, 1.0, bins=4)
        b = QuantileSketch(0.0, 2.0, bins=4)
        with pytest.raises(ValueError):
            psi(a, b)
        with pytest.raises(ValueError):
            ks_statistic(a, b)


class TestDriftReferenceAndMonitor:
    def _reference(self, seed: int = 0) -> DriftReference:
        rng = np.random.default_rng(seed)
        queries = rng.normal(size=(80, 8))
        corpus = rng.normal(size=(100, 8))
        return DriftReference.from_embeddings(queries, corpus)

    def test_reference_covers_all_signals_and_round_trips(self, tmp_path):
        reference = self._reference()
        assert set(reference.sketches) == set(DRIFT_SIGNALS)
        for sketch in reference.sketches.values():
            assert sketch.total > 0
        path = tmp_path / "drift-reference.json"
        reference.save(path)
        loaded = DriftReference.load(path)
        for name in DRIFT_SIGNALS:
            assert np.array_equal(loaded.sketches[name].counts,
                                  reference.sketches[name].counts)

    def test_monitor_scores_low_on_matching_distribution(self):
        rng = np.random.default_rng(1)
        queries = rng.normal(size=(200, 8))
        corpus = rng.normal(size=(100, 8))
        reference = DriftReference.from_embeddings(queries, corpus)
        from repro.retrieval.index import NearestNeighborIndex
        index = NearestNeighborIndex(corpus)
        monitor = DriftMonitor(reference, min_samples=20)
        for row in queries[:100]:
            _, distances = index.query(row, k=2)
            monitor.observe_query(row, distances)
        scores = monitor.scores()
        assert all(score < 0.25 for score in scores.values())

    def test_monitor_flags_scaled_embeddings(self):
        reference = self._reference(seed=2)
        monitor = DriftMonitor(reference, min_samples=20)
        rng = np.random.default_rng(3)
        for _ in range(50):
            monitor.observe_query(rng.normal(size=8) * 10.0,
                                  [0.3, 0.5])
        assert monitor.scores()["embedding_norm"] > 0.25

    def test_generation_reset_clears_live_sketches(self):
        reference = self._reference(seed=4)
        monitor = DriftMonitor(reference, min_samples=1)
        monitor.observe_query(np.ones(8), [0.1, 0.2])
        assert monitor.samples() == 1
        monitor.start_generation(reference)
        assert monitor.samples() == 0

    def test_exports_gauges(self):
        registry = MetricsRegistry()
        reference = self._reference(seed=5)
        monitor = DriftMonitor(reference, registry=registry,
                               min_samples=5, export_every=1)
        rng = np.random.default_rng(6)
        for _ in range(10):
            monitor.observe_query(rng.normal(size=8), [0.3, 0.6])
        family = registry.get("drift_score")
        exported = {key[0] for key, _ in family.children()}
        assert exported == set(DRIFT_SIGNALS)
        assert registry.get("drift_samples").labels().value == 10


# ----------------------------------------------------------------------
# Golden probes
# ----------------------------------------------------------------------
class TestGoldenProbe:
    @pytest.fixture(scope="class")
    def world(self):
        dataset, featurizer = make_world(num_pairs=40)
        return make_engine(dataset, featurizer)

    def test_golden_set_penalizes_missing_matches(self, world):
        golden = GoldenSet.from_engine(world, size=8, seed=3)
        query = golden.queries[0]
        assert golden.rank_of(query, [query.true_row]) == 1
        assert golden.rank_of(query, [query.true_row + 1]) == \
            golden.penalty_rank

    def test_offline_metrics_are_perfect_on_self_corpus(self, world):
        # The stub corpus pairs image and recipe embeddings, so
        # self-retrieval must put the true row at rank 1.
        golden = GoldenSet.from_engine(world, size=8, seed=3)
        metrics = golden.offline_metrics(world)
        assert metrics.medr == 1.0
        assert metrics.r_at_1 == 100.0

    def test_probe_exports_gauges_and_events(self, world):
        from repro.serving import ResilientSearchService, ServiceConfig
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        service = ResilientSearchService(
            world, ServiceConfig(deadline=5.0), clock=clock,
            sleep=clock.sleep, telemetry=telemetry)
        golden = GoldenSet.from_engine(world, size=8, seed=3)
        probe = GoldenProbe(service, golden,
                            registry=telemetry.registry,
                            events=telemetry.events, clock=clock)
        probe.attach()
        assert probe.baseline is not None    # generation-0 baseline
        metrics = probe.run()
        registry = telemetry.registry
        assert registry.get("probe_online_medr").labels().value == \
            metrics.medr
        assert registry.get("probe_baseline_medr").labels().value == \
            probe.baseline.medr
        assert registry.get("probe_medr_delta").labels().value == \
            pytest.approx(metrics.medr - probe.baseline.medr)
        recalls = dict(registry.get("probe_online_recall").children())
        assert recalls[("1",)].value == metrics.r_at_1
        assert telemetry.events.of_type("probe")
        assert telemetry.events.of_type("probe_baseline")

    def test_maybe_run_respects_interval(self, world):
        from repro.serving import ResilientSearchService, ServiceConfig
        clock = FakeClock()
        service = ResilientSearchService(
            world, ServiceConfig(deadline=5.0), clock=clock,
            sleep=clock.sleep, telemetry=Telemetry(clock=clock))
        golden = GoldenSet.from_engine(world, size=4, seed=3)
        probe = GoldenProbe(service, golden, interval_s=30.0,
                            clock=clock)
        assert probe.maybe_run() is not None
        assert probe.maybe_run() is None     # too soon
        clock.sleep(31.0)
        assert probe.maybe_run() is not None


# ----------------------------------------------------------------------
# SLOs and burn-rate alerting
# ----------------------------------------------------------------------
class TestAlertManager:
    WINDOW = BurnRateWindow("fast", short_s=60.0, long_s=300.0,
                            factor=2.0)

    def test_availability_alert_fires_and_resolves(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", labels=("status",))
        clock = FakeClock()
        events = EventLog(clock=clock)
        manager = AlertManager(
            registry,
            [SLO(name="avail", kind="availability", budget=0.01,
                 counter="req_total")],
            windows=(self.WINDOW,), clock=clock, events=events)
        for _ in range(50):
            requests.labels(status="ok").inc()
        assert manager.evaluate() == []
        # A burst of errors: burn = (10/60)/0.01 far above factor 2.
        for _ in range(50):
            requests.labels(status="error").inc()
        clock.sleep(10.0)
        transitions = manager.evaluate()
        assert [a.slo.name for a in transitions] == ["avail"]
        assert manager.alerts["avail"].firing
        assert registry.get("slo_alert_firing").labels(
            slo="avail").value == 1
        # Recovery: a long healthy stretch pushes the short window
        # burn back under the factor.
        for _ in range(3):
            clock.sleep(60.0)
            for _ in range(5000):
                requests.labels(status="ok").inc()
            manager.evaluate()
        assert not manager.alerts["avail"].firing
        states = [e["state"] for e in events.of_type("alert")]
        assert states == ["firing", "resolved"]

    def test_ceiling_alert_watches_gauge(self):
        registry = MetricsRegistry()
        medr = registry.gauge("probe_online_medr")
        clock = FakeClock()
        manager = AlertManager(
            registry,
            [SLO(name="quality", kind="ceiling", budget=0.1,
                 gauge="probe_online_medr", ceiling=10.0)],
            windows=(self.WINDOW,), clock=clock)
        medr.set(2.0)
        for _ in range(5):
            clock.sleep(10.0)
            manager.evaluate()
        assert not manager.alerts["quality"].firing
        medr.set(40.0)
        for _ in range(5):
            clock.sleep(10.0)
            manager.evaluate()
        assert manager.alerts["quality"].firing
        assert manager.alerts["quality"].value == 40.0

    def test_ceiling_ignores_unset_labelled_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("drift_score", labels=("signal",))
        clock = FakeClock()
        manager = AlertManager(
            registry,
            [SLO(name="drift", kind="ceiling", budget=0.1,
                 gauge="drift_score", ceiling=0.25)],
            windows=(self.WINDOW,), clock=clock)
        for _ in range(5):
            clock.sleep(10.0)
            manager.evaluate()      # no children yet: nothing to judge
        assert not manager.alerts["drift"].firing

    def test_latency_slo_counts_observations_above_threshold(self):
        registry = MetricsRegistry()
        latency = registry.histogram(
            "stage_seconds", labels=("stage",),
            buckets=(0.01, 0.05, 0.25, 1.0))
        slo = SLO(name="p99", kind="latency", budget=0.01,
                  histogram="stage_seconds",
                  labels=(("stage", "index"),), threshold=0.25)
        for _ in range(98):
            latency.labels(stage="index").observe(0.005)
        bad, total = slo.sample(registry)
        assert (bad, total) == (0.0, 98.0)
        latency.labels(stage="index").observe(0.9)
        latency.labels(stage="index").observe(2.0)
        bad, total = slo.sample(registry)
        assert (bad, total) == (2.0, 100.0)

    def test_duplicate_slo_names_rejected(self):
        registry = MetricsRegistry()
        slo = SLO(name="x", kind="availability", budget=0.1,
                  counter="c_total")
        with pytest.raises(ValueError):
            AlertManager(registry, [slo, slo])


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def _telemetry(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.tracer.span("request", kind="recipe"):
            clock.sleep(0.01)
        telemetry.events.emit("probe", medr=3.0)
        telemetry.registry.gauge("probe_online_medr").set(3.0)
        return telemetry, clock

    def test_dump_writes_complete_bundle(self, tmp_path):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry, tmp_path / "flight",
                                  min_interval_s=0.0)
        bundle = recorder.dump("manual-test")
        assert bundle is not None and bundle.is_dir()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["reason"] == "manual-test"
        assert manifest["spans"] == 1
        spans = [json.loads(line) for line in
                 (bundle / "spans.jsonl").read_text().splitlines()]
        assert spans[0]["name"] == "request"
        events = [json.loads(line) for line in
                  (bundle / "events.jsonl").read_text().splitlines()]
        assert any(e["event"] == "probe" for e in events)
        metrics = json.loads((bundle / "metrics.json").read_text())
        assert metrics["probe_online_medr"]["samples"][0]["value"] == 3.0
        # No partially-written temp bundles left behind.
        assert not [p for p in bundle.parent.iterdir()
                    if p.name.startswith(".")]

    def test_flap_guard_suppresses_rapid_dumps(self, tmp_path):
        telemetry, clock = self._telemetry()
        recorder = FlightRecorder(telemetry, tmp_path,
                                  min_interval_s=10.0)
        assert recorder.dump("first") is not None
        assert recorder.dump("second") is None
        clock.sleep(11.0)
        assert recorder.dump("third") is not None
        assert len(recorder.bundles) == 2

    def test_on_alert_bundles_alert_context_and_drift(self, tmp_path):
        telemetry, _ = self._telemetry()
        registry = telemetry.registry
        rng = np.random.default_rng(0)
        reference = DriftReference.from_embeddings(
            rng.normal(size=(30, 8)), rng.normal(size=(30, 8)))
        monitor = DriftMonitor(reference, min_samples=1)
        monitor.observe_query(np.ones(8), [0.3, 0.5])
        recorder = FlightRecorder(telemetry, tmp_path, drift=monitor,
                                  min_interval_s=0.0)
        clock = FakeClock()
        manager = AlertManager(
            registry,
            [SLO(name="quality", kind="ceiling", budget=0.1,
                 gauge="probe_online_medr", ceiling=1.0)],
            windows=(BurnRateWindow("fast", 60.0, 300.0, 2.0),),
            clock=clock, on_fire=[recorder.on_alert])
        for _ in range(3):
            clock.sleep(10.0)
            manager.evaluate()
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        assert "alert-quality" in bundle.name
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["context"]["slo"] == "quality"
        drift = json.loads((bundle / "drift.json").read_text())
        assert set(drift["sketches"]["live"]) == set(DRIFT_SIGNALS)


# ----------------------------------------------------------------------
# Monitor CLI
# ----------------------------------------------------------------------
class TestMonitorCli:
    def _write_trace(self, path, firing: bool) -> None:
        registry = MetricsRegistry()
        stage = registry.histogram("serving_stage_seconds",
                                   labels=("stage",),
                                   buckets=(0.01, 0.1, 1.0))
        for _ in range(10):
            stage.labels(stage="index").observe(0.005)
        registry.gauge("slo_burn_rate",
                       labels=("slo", "window")).labels(
            slo="quality_medr", window="page").set(20.0 if firing
                                                  else 0.0)
        registry.gauge("slo_alert_firing", labels=("slo",)).labels(
            slo="quality_medr").set(1 if firing else 0)
        records = [
            {"kind": "event", "event": "probe", "ts": 1.0,
             "medr": 30.0 if firing else 1.0, "r_at_1": 10.0,
             "r_at_5": 40.0, "r_at_10": 60.0, "baseline_medr": 1.0,
             "medr_delta": 29.0 if firing else 0.0},
            {"kind": "event", "event": "drift", "ts": 2.0,
             "embedding_norm": 0.02, "top1_distance": 0.4,
             "margin": None},
            {"kind": "event", "event": "swap", "ts": 3.0,
             "generation": 1, "ok": True},
            {"kind": "metrics", "ts": 4.0,
             "metrics": registry.to_dict()},
        ]
        if firing:
            records.insert(3, {
                "kind": "event", "event": "alert", "ts": 3.5,
                "slo": "quality_medr", "state": "firing",
                "kind_": "ceiling"})
            records.append({
                "kind": "event", "event": "flight", "ts": 5.0,
                "reason": "alert-quality_medr",
                "bundle": "/tmp/flight-0001"})
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.write("{ truncated mid-write\n")   # must be skipped

    def test_quiet_trace_exits_zero(self, tmp_path, capsys):
        trace = tmp_path / "telemetry.jsonl"
        self._write_trace(trace, firing=False)
        assert cli_main(["monitor", "--jsonl", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "probe: online MedR 1.0" in out
        assert "drift (PSI)" in out and "margin n/a" in out
        assert "stage index" in out and "p99" in out
        assert "generation: 1" in out

    def test_firing_trace_exits_nonzero_and_lists_bundle(
            self, tmp_path, capsys):
        trace = tmp_path / "telemetry.jsonl"
        self._write_trace(trace, firing=True)
        assert cli_main(["monitor", "--jsonl", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "alert quality_medr: FIRING" in out
        assert "flight bundle: /tmp/flight-0001" in out
        assert "burn quality_medr/page: 20.00x" in out
