"""Unit tests for Recipe1M JSON import/export."""

import json

import numpy as np
import pytest

from repro.data import (DatasetConfig, export_recipe1m, generate_dataset,
                        import_recipe1m)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetConfig(num_pairs=60, num_classes=5,
                                          image_size=12, seed=61))


def test_export_writes_all_artifacts(dataset, tmp_path):
    paths = export_recipe1m(dataset, tmp_path)
    assert set(paths) == {"layer1", "classes", "images"}
    with open(paths["layer1"]) as handle:
        layer1 = json.load(handle)
    assert len(layer1) == len(dataset)
    entry = layer1[0]
    assert set(entry) == {"id", "title", "ingredients", "instructions",
                          "partition"}
    assert all("text" in item for item in entry["ingredients"])


def test_partitions_match_splits(dataset, tmp_path):
    paths = export_recipe1m(dataset, tmp_path)
    with open(paths["layer1"]) as handle:
        layer1 = json.load(handle)
    counts = {"train": 0, "val": 0, "test": 0}
    for entry in layer1:
        counts[entry["partition"]] += 1
    for name in counts:
        assert counts[name] == len(dataset.split_indices(name))


def test_roundtrip_preserves_content(dataset, tmp_path):
    export_recipe1m(dataset, tmp_path)
    restored = import_recipe1m(tmp_path)
    assert len(restored) == len(dataset)
    for original, loaded in zip(dataset.recipes, restored.recipes):
        assert loaded.title == original.title
        assert loaded.ingredients == original.ingredients
        assert loaded.instructions == original.instructions
        assert loaded.class_id == original.class_id
        np.testing.assert_allclose(loaded.image, original.image)


def test_roundtrip_preserves_splits(dataset, tmp_path):
    export_recipe1m(dataset, tmp_path)
    restored = import_recipe1m(tmp_path)
    for name in ("train", "val", "test"):
        np.testing.assert_array_equal(restored.split_indices(name),
                                      dataset.split_indices(name))


def test_unlabeled_pairs_stay_unlabeled(dataset, tmp_path):
    export_recipe1m(dataset, tmp_path)
    restored = import_recipe1m(tmp_path)
    for original, loaded in zip(dataset.recipes, restored.recipes):
        assert loaded.is_labeled == original.is_labeled


def test_import_rejects_bad_partition(dataset, tmp_path):
    paths = export_recipe1m(dataset, tmp_path)
    with open(paths["layer1"]) as handle:
        layer1 = json.load(handle)
    layer1[0]["partition"] = "holdout"
    with open(paths["layer1"], "w") as handle:
        json.dump(layer1, handle)
    with pytest.raises(ValueError):
        import_recipe1m(tmp_path)


def test_imported_dataset_trains(dataset, tmp_path):
    """An imported dataset feeds the normal pipeline end to end."""
    from repro.core import Trainer, TrainingConfig, build_scenario
    from repro.data import RecipeFeaturizer

    export_recipe1m(dataset, tmp_path)
    restored = import_recipe1m(tmp_path, taxonomy=dataset.taxonomy)
    feat = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(restored)
    train = feat.encode_split(restored, "train")
    model, config = build_scenario(
        "adamine_ins", feat, 5, 12,
        base_config=TrainingConfig(epochs=1, freeze_epochs=0,
                                   batch_size=12, augment=False,
                                   select_best=False),
        latent_dim=12)
    history = Trainer(model, config).fit(train)
    assert np.isfinite(history[0].train_loss)
