"""Streaming-ingest chaos suite (opt-in via ``-m ingest``).

Three storylines from the durability contract, driven end-to-end
through :class:`ResilientSearchService`:

(a) **kill -9 mid-append** — a torn tail must be truncated, never
    propagated, and every *acknowledged* write must survive recovery;
    ENOSPC on an append must come back as a structured ``error``
    outcome with the log rolled back byte-exactly.
(b) **crash mid-compaction** — dying at any protocol phase recovers to
    a state bitwise-identical to a crash-free twin: before the
    manifest moves, as if compaction never started; after, as if it
    fully committed.  No loss, no double-apply, no orphaned snapshots.
(c) **queries racing the swap** — a query stream observes every live
    recipe exactly once at every compaction phase edge, from a real
    racing thread, and in sharded-cluster mode bitwise-identical to a
    monolithic twin.
"""

import threading

import numpy as np
import pytest

from repro.robustness import (CompactionRacingQueries, CrashMidCompaction,
                              DiskFullOnAppend, SimulatedCrash, TornWrite)
from repro.serving import ResilientSearchService, ServiceConfig
from repro.serving.ingest import IngestConfig

from ._serving_util import FakeClock, make_engine, make_world

pytestmark = pytest.mark.ingest


@pytest.fixture(scope="module")
def world():
    return make_world(num_pairs=80, num_classes=4, seed=7)


def make_service(world, log_dir, *, faults=None, shards=1,
                 compact_at=10_000, fsync_every=1):
    dataset, featurizer = world
    clock = FakeClock()
    return ResilientSearchService(
        make_engine(dataset, featurizer),
        ServiceConfig(shards=shards, replicas=2),
        clock=clock, sleep=clock.sleep,
        ingest_log=log_dir,
        ingest_config=IngestConfig(fsync_every=fsync_every,
                                   compact_at_delta_rows=compact_at),
        ingest_faults=faults)


def train_recipes(world, count):
    dataset, _ = world
    return list(dataset.split("train"))[:count]


def live_ids(service) -> set[int]:
    return set(service.ingestor.overlays["recipe"]._key_of)


def full_scan(service, recipe, k=500):
    """One search wide enough to return the entire live corpus."""
    response = service.search_by_recipe(recipe, k=k)
    assert response.outcome.status == "ok", response.outcome.error
    return response


def assert_exactly_once(service, recipe, expected: set[int]):
    response = full_scan(service, recipe)
    seen = [r.corpus_row for r in response.results]
    assert len(seen) == len(set(seen)), "a recipe was observed twice"
    assert set(seen) == expected, \
        "a live recipe was lost (or a dead one resurrected)"


def search_fingerprint(service, probes, k=10):
    """Bitwise-comparable view of several searches."""
    out = []
    for recipe in probes:
        response = service.search_by_recipe(recipe, k=k)
        assert response.outcome.status == "ok", response.outcome.error
        out.append((tuple(r.corpus_row for r in response.results),
                    np.array([r.distance for r in
                              response.results]).tobytes()))
    return out


# ----------------------------------------------------------------------
# (a) kill -9 mid-append
# ----------------------------------------------------------------------
class TestTornAppend:
    def test_acked_writes_survive_torn_tail(self, world, tmp_path):
        log_dir = tmp_path / "wal"
        service = make_service(world, log_dir,
                               faults=TornWrite(record=3))
        recipes = train_recipes(world, 5)
        acked = []
        for recipe in recipes[:3]:
            outcome = service.ingest(recipe)
            assert outcome.status == "ok" and outcome.durable
            acked.append(outcome.item_id)

        with pytest.raises(SimulatedCrash):
            service.ingest(recipes[3])  # record 3 tears mid-write

        # "reboot": a fresh process over the same log directory.
        revived = make_service(world, log_dir)
        recovery = revived.ingestor.recovery
        assert recovery["truncated_bytes"] > 0
        assert recovery["truncated_segment"] == 0
        assert recovery["replayed_records"] == 3
        overlay = revived.ingestor.overlays["recipe"]
        for item_id in acked:
            assert overlay.is_live(item_id)
        # the torn, unacknowledged write is gone — not half-applied
        assert not overlay.is_live(acked[-1] + 1)
        # ...and each streamed recipe is servable end to end (the stub
        # embedder can tie with a base recipe, so assert membership,
        # not rank)
        for recipe, item_id in zip(recipes[:3], acked):
            response = full_scan(revived, recipe, k=5)
            rows = [r.corpus_row for r in response.results]
            assert item_id in rows
            hit = response.results[rows.index(item_id)]
            assert hit.recipe.title == recipe.title
            assert hit.distance == pytest.approx(0.0, abs=1e-9)
        # the log healed: the next write lands cleanly after the
        # repair point and reuses the torn record's id
        outcome = revived.ingest(recipes[3])
        assert outcome.status == "ok"
        assert outcome.item_id == acked[-1] + 1
        counters = revived.stats()["ingest"]
        assert counters["recovery"]["truncated_bytes"] > 0

    def test_disk_full_is_an_outcome_not_an_exception(self, world,
                                                      tmp_path):
        fault = DiskFullOnAppend(records={2})
        service = make_service(world, tmp_path / "wal", faults=fault)
        recipes = train_recipes(world, 4)
        assert service.ingest(recipes[0]).status == "ok"
        assert service.ingest(recipes[1]).status == "ok"

        outcome = service.ingest(recipes[2])  # hits ENOSPC
        assert outcome.status == "error"
        assert "rolled back" in outcome.error
        assert fault.fired == [2]

        # the service keeps serving, and the overlay never saw the op
        before = live_ids(service)
        response = full_scan(service, recipes[0], k=5)
        assert response.outcome.status == "ok"
        assert live_ids(service) == before

        fault.records.clear()  # space freed
        retried = service.ingest(recipes[2])
        assert retried.status == "ok"
        # nothing from the failed attempt leaked into the log: a
        # replayed twin sees exactly the three acknowledged adds
        revived = make_service(world, tmp_path / "wal")
        assert revived.ingestor.recovery["replayed_records"] == 3
        assert revived.ingestor.recovery["truncated_bytes"] == 0
        assert live_ids(revived) == live_ids(service)

    def test_batched_fsync_acknowledges_before_sync(self, world,
                                                    tmp_path):
        service = make_service(world, tmp_path / "wal", fsync_every=4)
        recipes = train_recipes(world, 4)
        first = service.ingest(recipes[0])
        assert first.status == "ok" and not first.durable
        for recipe in recipes[1:3]:
            assert not service.ingest(recipe).durable
        fourth = service.ingest(recipes[3])  # batch boundary syncs
        assert fourth.durable
        assert service.ingestor.log.synced


# ----------------------------------------------------------------------
# (b) crash mid-compaction: no loss, no double-apply
# ----------------------------------------------------------------------
def _mutate(service, world):
    """One fixed mutation script: adds, deletes, and a base delete."""
    recipes = train_recipes(world, 6)
    acked = [service.ingest(recipe) for recipe in recipes]
    assert all(o.status == "ok" for o in acked)
    assert service.delete(acked[1].item_id).status == "ok"
    assert service.delete(0).status == "ok"  # a frozen-base item
    return recipes


class TestCrashMidCompaction:
    @pytest.mark.parametrize("phase", ["folded", "base_written",
                                       "manifest_written"])
    def test_recovery_matches_crash_free_twin(self, world, tmp_path,
                                              phase):
        committed = phase == "manifest_written"
        crash_dir = tmp_path / "crash"
        control_dir = tmp_path / "control"

        service = make_service(world, crash_dir,
                               faults=CrashMidCompaction(phase))
        probes = _mutate(service, world)
        with pytest.raises(SimulatedCrash):
            service.compact_ingest()

        control = make_service(world, control_dir)
        _mutate(control, world)
        if committed:
            # the manifest moved before the crash: the compaction IS
            # committed, so the twin is one that compacted cleanly
            assert control.compact_ingest().ok

        revived = make_service(world, crash_dir)
        assert revived.ingestor.epoch == (1 if committed else 0)
        expected_base = ("base-000001.npz" if committed else "external")
        assert revived.ingestor.recovery["base"] == expected_base
        assert live_ids(revived) == live_ids(control)
        # bitwise-identical serving state: same ids, same distance
        # bytes, same tie order on every probe
        assert (search_fingerprint(revived, probes)
                == search_fingerprint(control, probes))
        # no loss, no double-apply across the whole live corpus
        assert_exactly_once(revived, probes[0], live_ids(control))
        # no orphaned snapshot files from the interrupted attempt
        stray = sorted(p.name for p in crash_dir.glob("base-*"))
        assert stray == (["base-000001.npz"] if committed else [])

    @pytest.mark.parametrize("phase", ["folded", "base_written",
                                       "manifest_written"])
    def test_revived_service_can_compact_again(self, world, tmp_path,
                                               phase):
        log_dir = tmp_path / "wal"
        service = make_service(world, log_dir,
                               faults=CrashMidCompaction(phase))
        probes = _mutate(service, world)
        before_ids = live_ids(service)
        with pytest.raises(SimulatedCrash):
            service.compact_ingest()

        revived = make_service(world, log_dir)
        fingerprint = search_fingerprint(revived, probes)
        report = revived.compact_ingest()
        assert report.ok and not report.rolled_back
        assert live_ids(revived) == before_ids
        assert search_fingerprint(revived, probes) == fingerprint
        assert revived.ingestor.log.lag_records == 0


# ----------------------------------------------------------------------
# (c) queries racing the compaction swap
# ----------------------------------------------------------------------
class TestRacingQueries:
    def test_exactly_once_at_every_phase_edge(self, world, tmp_path):
        holder = {}
        observed = []

        def probe(phase):
            service = holder["service"]
            observed.append(phase)
            assert_exactly_once(service, holder["probe"],
                                holder["expected"])

        service = make_service(
            world, tmp_path / "wal",
            faults=CompactionRacingQueries(probe))
        probes = _mutate(service, world)
        holder.update(service=service, probe=probes[0],
                      expected=live_ids(service))

        report = service.compact_ingest()
        assert report.ok
        assert observed == ["folded", "base_written",
                            "manifest_written", "committed"]
        # and still exactly-once after the swap settled
        assert_exactly_once(service, probes[0], holder["expected"])
        assert service.ingestor.epoch == 1

    def test_real_racing_thread(self, world, tmp_path):
        service = make_service(world, tmp_path / "wal")
        recipes = train_recipes(world, 12)
        for recipe in recipes[:4]:
            assert service.ingest(recipe).status == "ok"
        query = recipes[0]
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    response = full_scan(service, query)
                    seen = [r.corpus_row for r in response.results]
                    if len(seen) != len(set(seen)):
                        failures.append(f"duplicate rows: {seen}")
                except Exception as exc:  # pragma: no cover
                    failures.append(f"{type(exc).__name__}: {exc}")

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for cycle in range(3):
                for recipe in recipes[4 + cycle * 2:6 + cycle * 2]:
                    assert service.ingest(recipe).status == "ok"
                report = service.compact_ingest()
                assert report.ok, report.failures
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not failures, failures[:3]
        assert service.ingestor.epoch == 3

    def test_cluster_mode_matches_monolithic_twin(self, world,
                                                  tmp_path):
        mono = make_service(world, tmp_path / "mono")
        clustered = make_service(world, tmp_path / "clustered",
                                 shards=3)
        assert clustered._active.image_cluster is not None
        probes = _mutate(mono, world)
        _mutate(clustered, world)

        assert live_ids(mono) == live_ids(clustered)
        assert (search_fingerprint(mono, probes)
                == search_fingerprint(clustered, probes))

        assert mono.compact_ingest().ok
        assert clustered.compact_ingest().ok
        assert (search_fingerprint(mono, probes)
                == search_fingerprint(clustered, probes))

        # streamed writes after the fold keep the twins in lockstep
        extra = train_recipes(world, 8)[6:]
        for recipe in extra:
            a, b = mono.ingest(recipe), clustered.ingest(recipe)
            assert a.status == b.status == "ok"
            assert a.item_id == b.item_id
        deleted = live_ids(mono) - {0}
        victim = sorted(deleted)[-1]
        assert mono.delete(victim).status == "ok"
        assert clustered.delete(victim).status == "ok"
        assert (search_fingerprint(mono, probes)
                == search_fingerprint(clustered, probes))
        assert_exactly_once(clustered, probes[0], live_ids(mono))
