"""Unit tests for the CCA and random baselines + fixed features."""

import numpy as np
import pytest

from repro.baselines import (CCA, RandomEmbedder, corpus_features,
                             image_features, recipe_features)
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.retrieval import evaluate_embeddings


RNG = lambda seed=0: np.random.default_rng(seed)


class TestCCA:
    def test_recovers_linear_relation(self):
        """Two views of the same latent signal must correlate ~1."""
        rng = RNG(0)
        latent = rng.normal(size=(300, 4))
        x = latent @ rng.normal(size=(4, 10)) + 0.01 * rng.normal(
            size=(300, 10))
        y = latent @ rng.normal(size=(4, 8)) + 0.01 * rng.normal(
            size=(300, 8))
        cca = CCA(dim=4, reg=1e-4).fit(x, y)
        assert cca.correlations[0] > 0.95

    def test_projections_correlate(self):
        rng = RNG(1)
        latent = rng.normal(size=(200, 3))
        x = latent @ rng.normal(size=(3, 6))
        y = latent @ rng.normal(size=(3, 5))
        cca = CCA(dim=2).fit(x, y)
        px, py = cca.transform_x(x), cca.transform_y(y)
        corr = np.corrcoef(px[:, 0], py[:, 0])[0, 1]
        assert abs(corr) > 0.9

    def test_retrieval_beats_chance_on_related_views(self):
        rng = RNG(2)
        latent = rng.normal(size=(150, 5))
        x = latent @ rng.normal(size=(5, 12)) + 0.1 * rng.normal(
            size=(150, 12))
        y = latent @ rng.normal(size=(5, 9)) + 0.1 * rng.normal(
            size=(150, 9))
        px, py = CCA(dim=5).fit_transform(x, y)
        result = evaluate_embeddings(px, py, bag_size=100, num_bags=2)
        assert result.medr("image_to_recipe") < 15  # chance would be ~50

    def test_dim_capped_by_rank(self):
        rng = RNG(3)
        x = rng.normal(size=(50, 3))
        y = rng.normal(size=(50, 2))
        cca = CCA(dim=10).fit(x, y)
        assert cca.w_x.shape[1] == 2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CCA().transform_x(np.zeros((2, 3)))

    def test_misaligned_views_raise(self):
        with pytest.raises(ValueError):
            CCA().fit(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CCA(dim=0)
        with pytest.raises(ValueError):
            CCA(reg=-1.0)

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            CCA().fit(np.zeros((1, 2)), np.zeros((1, 2)))


class TestRandomEmbedder:
    def test_unit_norm(self):
        emb = RandomEmbedder(dim=8, seed=0).embed(10)
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1), np.ones(10))

    def test_retrieval_at_chance(self):
        a, b = RandomEmbedder(dim=16, seed=1).embed_pair(200)
        result = evaluate_embeddings(a, b, bag_size=100, num_bags=5)
        medr = result.medr("image_to_recipe")
        assert 30 <= medr <= 70

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            RandomEmbedder(dim=0)


class TestFixedFeatures:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = generate_dataset(DatasetConfig(num_pairs=100, num_classes=6,
                                            image_size=12, seed=11))
        feat = RecipeFeaturizer(word_dim=10, sentence_dim=10).fit(ds)
        corpus = feat.encode_split(ds, "train")
        return ds, feat, corpus

    def test_image_feature_shape(self, setup):
        __, __, corpus = setup
        features = image_features(corpus.images, grid=4)
        assert features.shape == (len(corpus), 6 + 3 * 16)

    def test_image_feature_grid_mismatch(self, setup):
        __, __, corpus = setup
        with pytest.raises(ValueError):
            image_features(corpus.images, grid=5)

    def test_recipe_feature_shape(self, setup):
        __, feat, corpus = setup
        features = recipe_features(corpus, feat)
        assert features.shape == (len(corpus), 10 + 10)

    def test_corpus_features_aligned(self, setup):
        __, feat, corpus = setup
        img, rec = corpus_features(corpus, feat)
        assert img.shape[0] == rec.shape[0] == len(corpus)

    def test_cca_on_fixed_features_beats_chance(self, setup):
        __, feat, corpus = setup
        img, rec = corpus_features(corpus, feat)
        px, py = CCA(dim=10, reg=1e-2).fit_transform(img, rec)
        result = evaluate_embeddings(px, py, bag_size=len(corpus),
                                     num_bags=1)
        chance = len(corpus) / 2
        assert result.medr("image_to_recipe") < chance
