"""Unit tests for recall curves / MRR and learning-rate schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Parameter
from repro.optim import SGD, CosineDecay, StepDecay
from repro.retrieval import (mean_reciprocal_rank, rank_histogram,
                             recall_curve)


class TestRecallCurve:
    def test_known_values(self):
        ranks = np.array([1, 2, 5, 10])
        ks, recalls = recall_curve(ranks, max_k=10)
        assert recalls[0] == 25.0     # R@1
        assert recalls[1] == 50.0     # R@2
        assert recalls[4] == 75.0     # R@5
        assert recalls[9] == 100.0    # R@10

    def test_monotone_nondecreasing(self):
        ranks = np.random.default_rng(0).integers(1, 50, size=100)
        __, recalls = recall_curve(ranks)
        assert (np.diff(recalls) >= 0).all()

    def test_defaults_to_max_rank(self):
        ks, recalls = recall_curve(np.array([3, 7]))
        assert ks[-1] == 7
        assert recalls[-1] == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recall_curve(np.array([]))
        with pytest.raises(ValueError):
            recall_curve(np.array([1]), max_k=0)


class TestRankHistogram:
    def test_counts_sum_to_total(self):
        ranks = np.random.default_rng(1).integers(1, 30, size=80)
        __, counts = rank_histogram(ranks, num_bins=6)
        assert counts.sum() == 80

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rank_histogram(np.array([]))


class TestMRR:
    def test_perfect(self):
        assert mean_reciprocal_rank(np.ones(5)) == 1.0

    def test_known_value(self):
        assert mean_reciprocal_rank(np.array([1, 2, 4])) == pytest.approx(
            (1 + 0.5 + 0.25) / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank(np.array([]))
        with pytest.raises(ValueError):
            mean_reciprocal_rank(np.array([0]))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                max_size=50))
def test_property_mrr_bounded(ranks):
    value = mean_reciprocal_rank(np.array(ranks))
    assert 0.0 < value <= 1.0


class TestStepDecay:
    def test_decays_at_boundaries(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = StepDecay(opt, step=2, gamma=0.1)
        lrs = []
        for epoch in range(6):
            schedule.on_epoch_start(epoch)
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 1.0, 0.1, 0.1, 0.01, 0.01])

    def test_validation(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepDecay(opt, step=0)
        with pytest.raises(ValueError):
            StepDecay(opt, step=1, gamma=0.0)


class TestCosineDecay:
    def test_endpoints(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineDecay(opt, total_epochs=11, min_lr=0.1)
        schedule.on_epoch_start(0)
        assert opt.lr == pytest.approx(1.0)
        schedule.on_epoch_start(10)
        assert opt.lr == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineDecay(opt, total_epochs=8)
        lrs = []
        for epoch in range(8):
            schedule.on_epoch_start(epoch)
            lrs.append(opt.lr)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineDecay(opt, total_epochs=0)
        with pytest.raises(ValueError):
            CosineDecay(opt, total_epochs=5, min_lr=-1.0)
