"""Unit tests for the branches, joint model, scenarios and trainer."""

import dataclasses

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (SCENARIO_NAMES, JointEmbeddingModel, ImageBranch,
                        RecipeBranch, Trainer, TrainingConfig, build_model,
                        build_scenario, scenario_spec)
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.vision import MLPEncoder


RNG = lambda seed=0: np.random.default_rng(seed)


@pytest.fixture(scope="module")
def tiny_setup():
    """A tiny dataset + fitted featurizer + encoded corpora."""
    ds = generate_dataset(DatasetConfig(num_pairs=120, num_classes=6,
                                        image_size=12, seed=7))
    feat = RecipeFeaturizer(word_dim=10, sentence_dim=10,
                            max_ingredients=8, max_sentences=5).fit(ds)
    return {
        "dataset": ds,
        "featurizer": feat,
        "train": feat.encode_split(ds, "train"),
        "val": feat.encode_split(ds, "val"),
        "test": feat.encode_split(ds, "test"),
    }


def tiny_config(**overrides):
    base = dict(epochs=2, freeze_epochs=0, batch_size=16,
                learning_rate=2e-3, augment=False, eval_bag_size=30,
                eval_num_bags=1)
    base.update(overrides)
    return TrainingConfig(**base)


class TestBranches:
    def test_image_branch_shape(self, tiny_setup):
        rng = RNG()
        branch = ImageBranch(MLPEncoder(rng, image_size=12, feature_dim=16),
                             latent_dim=20, rng=rng)
        out = branch(tiny_setup["train"].images[:4])
        assert out.shape == (4, 20)

    def test_recipe_branch_shape(self, tiny_setup):
        feat = tiny_setup["featurizer"]
        corpus = tiny_setup["train"]
        branch = RecipeBranch(feat.ingredient_vectors, feat.sentence_dim,
                              latent_dim=20, rng=RNG())
        out = branch(corpus.ingredient_ids[:4], corpus.ingredient_lengths[:4],
                     corpus.sentence_vectors[:4], corpus.sentence_lengths[:4])
        assert out.shape == (4, 20)

    def test_ingredient_embedding_frozen(self, tiny_setup):
        feat = tiny_setup["featurizer"]
        branch = RecipeBranch(feat.ingredient_vectors, feat.sentence_dim,
                              latent_dim=8, rng=RNG())
        assert not branch.ingredient_embedding.weight.requires_grad

    def test_ablation_branches(self, tiny_setup):
        feat = tiny_setup["featurizer"]
        corpus = tiny_setup["train"]
        for kwargs in ({"use_instructions": False},
                       {"use_ingredients": False}):
            branch = RecipeBranch(feat.ingredient_vectors, feat.sentence_dim,
                                  latent_dim=8, rng=RNG(), **kwargs)
            out = branch(corpus.ingredient_ids[:3],
                         corpus.ingredient_lengths[:3],
                         corpus.sentence_vectors[:3],
                         corpus.sentence_lengths[:3])
            assert out.shape == (3, 8)

    def test_no_text_source_raises(self, tiny_setup):
        feat = tiny_setup["featurizer"]
        with pytest.raises(ValueError):
            RecipeBranch(feat.ingredient_vectors, feat.sentence_dim,
                         latent_dim=8, rng=RNG(), use_ingredients=False,
                         use_instructions=False)


class TestJointModel:
    def test_embeddings_unit_norm(self, tiny_setup):
        model = build_model(tiny_setup["featurizer"], 6, 12, latent_dim=16)
        model.eval()
        corpus = tiny_setup["train"]
        img, rec = model(corpus.images[:5], corpus.ingredient_ids[:5],
                         corpus.ingredient_lengths[:5],
                         corpus.sentence_vectors[:5],
                         corpus.sentence_lengths[:5])
        np.testing.assert_allclose(np.linalg.norm(img.data, axis=1),
                                   np.ones(5))
        np.testing.assert_allclose(np.linalg.norm(rec.data, axis=1),
                                   np.ones(5))

    def test_mismatched_latent_dims_raise(self, tiny_setup):
        feat = tiny_setup["featurizer"]
        rng = RNG()
        image_branch = ImageBranch(MLPEncoder(rng, image_size=12),
                                   latent_dim=8, rng=rng)
        recipe_branch = RecipeBranch(feat.ingredient_vectors,
                                     feat.sentence_dim, latent_dim=16,
                                     rng=rng)
        with pytest.raises(ValueError):
            JointEmbeddingModel(image_branch, recipe_branch)

    def test_classifier_head_optional(self, tiny_setup):
        plain = build_model(tiny_setup["featurizer"], 6, 12)
        with pytest.raises(RuntimeError):
            plain.classify(Tensor(np.zeros((2, 32))))
        headed = build_model(tiny_setup["featurizer"], 6, 12,
                             with_classifier=True)
        logits = headed.classify(Tensor(np.zeros((2, headed.latent_dim))))
        assert logits.shape == (2, 6)

    def test_classifier_adds_parameters(self, tiny_setup):
        plain = build_model(tiny_setup["featurizer"], 6, 12, seed=1)
        headed = build_model(tiny_setup["featurizer"], 6, 12, seed=1,
                             with_classifier=True)
        assert headed.num_parameters() > plain.num_parameters()

    def test_encode_corpus_aligned(self, tiny_setup):
        model = build_model(tiny_setup["featurizer"], 6, 12)
        corpus = tiny_setup["val"]
        img, rec = model.encode_corpus(corpus, batch_size=7)
        assert img.shape == rec.shape == (len(corpus), model.latent_dim)

    def test_encode_corpus_batch_invariant(self, tiny_setup):
        model = build_model(tiny_setup["featurizer"], 6, 12)
        corpus = tiny_setup["val"]
        a, __ = model.encode_corpus(corpus, batch_size=4)
        b, __ = model.encode_corpus(corpus, batch_size=100)
        np.testing.assert_allclose(a, b, atol=1e-10)


class TestScenarios:
    def test_all_scenarios_build(self, tiny_setup):
        for name in SCENARIO_NAMES:
            model, config = build_scenario(
                name, tiny_setup["featurizer"], 6, 12,
                base_config=tiny_config())
            assert model.latent_dim == 32
            assert config.epochs == 2

    def test_unknown_scenario_raises(self, tiny_setup):
        with pytest.raises(ValueError):
            build_scenario("bogus", tiny_setup["featurizer"], 6, 12)

    def test_spec_flags(self):
        assert scenario_spec("adamine_ins").use_semantic_loss is False
        assert scenario_spec("adamine_avg").strategy == "average"
        assert scenario_spec("pwc_star").positive_margin == 0.0
        assert scenario_spec("pwc_pp").positive_margin == 0.3
        assert scenario_spec("adamine_ingr").use_instructions is False
        assert scenario_spec("adamine_instr").use_ingredients is False

    def test_classifier_only_when_needed(self, tiny_setup):
        model, __ = build_scenario("adamine", tiny_setup["featurizer"], 6, 12,
                                   base_config=tiny_config())
        assert model.classifier is None
        model, __ = build_scenario("adamine_ins_cls",
                                   tiny_setup["featurizer"], 6, 12,
                                   base_config=tiny_config())
        assert model.classifier is not None


class TestTrainer:
    def test_training_improves_over_chance(self, tiny_setup):
        model, config = build_scenario(
            "adamine", tiny_setup["featurizer"], 6, 12,
            base_config=tiny_config(epochs=5))
        trainer = Trainer(model, config)
        trainer.fit(tiny_setup["train"], tiny_setup["val"])
        medr = trainer.evaluate_medr(tiny_setup["test"])
        chance = len(tiny_setup["test"]) / 2
        assert medr < 0.8 * chance

    def test_history_recorded(self, tiny_setup):
        model, config = build_scenario(
            "adamine", tiny_setup["featurizer"], 6, 12,
            base_config=tiny_config())
        trainer = Trainer(model, config)
        history = trainer.fit(tiny_setup["train"], tiny_setup["val"])
        assert len(history) == config.epochs
        assert all(np.isfinite(h.train_loss) for h in history)
        assert all(np.isfinite(h.val_medr) for h in history)

    def test_select_best_restores_best_epoch(self, tiny_setup):
        model, config = build_scenario(
            "adamine_ins", tiny_setup["featurizer"], 6, 12,
            base_config=tiny_config(epochs=4))
        trainer = Trainer(model, config)
        history = trainer.fit(tiny_setup["train"], tiny_setup["val"])
        best = min(h.val_medr for h in history)
        assert trainer.best_val_medr == best
        # restored model must reproduce the recorded best (same protocol)
        assert trainer.evaluate_medr(tiny_setup["val"]) == pytest.approx(
            best)

    def test_freeze_schedule_tracked(self, tiny_setup):
        model, config = build_scenario(
            "adamine_ins", tiny_setup["featurizer"], 6, 12,
            base_config=tiny_config(epochs=3, freeze_epochs=2))
        history = Trainer(model, config).fit(tiny_setup["train"],
                                             tiny_setup["val"])
        assert history[0].backbone_frozen
        assert history[1].backbone_frozen
        assert not history[2].backbone_frozen

    def test_pairwise_objective_trains(self, tiny_setup):
        model, config = build_scenario(
            "pwc_pp", tiny_setup["featurizer"], 6, 12,
            base_config=tiny_config())
        history = Trainer(model, config).fit(tiny_setup["train"],
                                             tiny_setup["val"])
        assert all(np.isfinite(h.train_loss) for h in history)

    def test_active_fraction_decreases(self, tiny_setup):
        model, config = build_scenario(
            "adamine_ins", tiny_setup["featurizer"], 6, 12,
            base_config=tiny_config(epochs=6))
        history = Trainer(model, config).fit(tiny_setup["train"],
                                             tiny_setup["val"])
        # adaptive mining's signature: fewer active triplets over time
        assert (history[-1].instance_active_fraction
                < history[0].instance_active_fraction)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(objective="bogus")
        with pytest.raises(ValueError):
            TrainingConfig(use_instance_loss=False,
                           use_semantic_loss=False)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_config_immutable(self):
        config = TrainingConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.epochs = 3
