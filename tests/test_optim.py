"""Unit tests for optimizers and the two-phase schedule."""

import numpy as np
import pytest

from repro import nn, optim
from repro.autograd import Tensor
from repro.nn import Parameter


RNG = lambda seed=0: np.random.default_rng(seed)


def quadratic_loss(param):
    """(p - 3)^2 summed — minimized at p == 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = optim.SGD([p], lr=0.1)
        for __ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = optim.SGD([p], lr=0.01, momentum=momentum)
            for __ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(2) * 10.0)
        opt = optim.SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(2)
        opt.step()
        assert (np.abs(p.data) < 10.0).all()

    def test_skips_frozen_parameters(self):
        p = Parameter(np.zeros(2))
        opt = optim.SGD([p], lr=0.1)
        p.grad = np.ones(2)
        p.requires_grad = False
        opt.step()
        np.testing.assert_allclose(p.data, np.zeros(2))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)
        with pytest.raises(ValueError):
            optim.SGD([Parameter(np.zeros(1))], lr=-0.1)
        with pytest.raises(ValueError):
            optim.SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = optim.Adam([p], lr=0.1)
        for __ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_step_size_bounded_by_lr(self):
        # Adam's first bias-corrected step is ~lr regardless of grad scale.
        p = Parameter(np.zeros(1))
        opt = optim.Adam([p], lr=0.01)
        p.grad = np.array([1e6])
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_skips_missing_grads(self):
        p = Parameter(np.zeros(2))
        optim.Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, np.zeros(2))

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            optim.Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))

    def test_trains_a_small_network(self):
        rng = RNG(1)
        net = nn.Sequential(nn.Linear(2, 8, RNG(0)), nn.Tanh(),
                            nn.Linear(8, 1, RNG(1)))
        opt = optim.Adam(net.parameters(), lr=0.05)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5)
        first = None
        for step in range(150):
            opt.zero_grad()
            pred = net(Tensor(x))
            err = pred - Tensor(y)
            loss = (err * err).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05 * first


class TestTwoPhaseSchedule:
    def test_backbone_starts_frozen(self):
        backbone = nn.Linear(2, 2, RNG())
        schedule = optim.TwoPhaseSchedule(backbone, freeze_epochs=2,
                                          total_epochs=5)
        assert schedule.backbone_frozen
        assert not backbone.weight.requires_grad

    def test_unfreezes_at_boundary(self):
        backbone = nn.Linear(2, 2, RNG())
        schedule = optim.TwoPhaseSchedule(backbone, freeze_epochs=2,
                                          total_epochs=5)
        schedule.on_epoch_start(0)
        schedule.on_epoch_start(1)
        assert schedule.backbone_frozen
        schedule.on_epoch_start(2)
        assert not schedule.backbone_frozen
        assert backbone.weight.requires_grad

    def test_zero_freeze_epochs_never_freezes(self):
        backbone = nn.Linear(2, 2, RNG())
        schedule = optim.TwoPhaseSchedule(backbone, freeze_epochs=0,
                                          total_epochs=3)
        assert not schedule.backbone_frozen
        assert backbone.weight.requires_grad

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            optim.TwoPhaseSchedule(nn.Linear(2, 2, RNG()),
                                   freeze_epochs=5, total_epochs=3)
