"""Unit tests for the synthetic Recipe1M data substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (BASE_INGREDIENTS, ClassTaxonomy, DatasetConfig,
                        DishRenderer, IngredientLexicon, InstructionGrammar,
                        PairBatcher, Recipe, RecipeFeaturizer,
                        SyntheticRecipe1M, generate_dataset)


RNG = lambda seed=0: np.random.default_rng(seed)


@pytest.fixture(scope="module")
def small_dataset():
    return generate_dataset(DatasetConfig(num_pairs=150, num_classes=8,
                                          image_size=12, seed=3))


@pytest.fixture(scope="module")
def featurizer(small_dataset):
    return RecipeFeaturizer(word_dim=12, sentence_dim=12,
                            max_ingredients=10,
                            max_sentences=6).fit(small_dataset)


class TestLexicon:
    def test_no_duplicate_names(self):
        lex = IngredientLexicon()
        assert len(lex) == len(set(lex.names))

    def test_colors_in_range(self):
        for ing in BASE_INGREDIENTS:
            assert all(0.0 <= c <= 1.0 for c in ing.color)
            assert 0.0 <= ing.texture <= 1.0

    def test_lookup(self):
        lex = IngredientLexicon()
        assert lex["broccoli"].group == "vegetable"
        assert "broccoli" in lex

    def test_by_group(self):
        lex = IngredientLexicon()
        assert all(i.group == "dairy" for i in lex.by_group("dairy"))
        assert len(lex.by_group("dairy")) > 3

    def test_sample_distinct_and_excluding(self):
        lex = IngredientLexicon()
        picks = lex.sample(RNG(), 10, exclude={"tomato"})
        names = [p.name for p in picks]
        assert len(set(names)) == 10
        assert "tomato" not in names

    def test_sample_too_many_raises(self):
        lex = IngredientLexicon()
        with pytest.raises(ValueError):
            lex.sample(RNG(), len(lex) + 1)


class TestTaxonomy:
    def test_curated_classes_present(self):
        tax = ClassTaxonomy(16, IngredientLexicon())
        for name in ("pizza", "cupcake", "hamburger", "green beans",
                     "pork chops"):
            assert name in tax

    def test_procedural_extension(self):
        tax = ClassTaxonomy(40, IngredientLexicon())
        assert len(tax) == 40
        assert tax[35].name == "dish-35"
        assert len(tax[35].core) >= 3

    def test_weights_normalized_and_head_heavy(self):
        tax = ClassTaxonomy(12, IngredientLexicon())
        weights = tax.weights
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]

    def test_core_ingredients_exist_in_lexicon(self):
        lex = IngredientLexicon()
        tax = ClassTaxonomy(16, lex)
        for cls in tax.classes:
            for name in cls.core + cls.extras:
                assert name in lex

    def test_sample_class_follows_weights(self):
        tax = ClassTaxonomy(8, IngredientLexicon())
        rng = RNG(1)
        draws = [tax.sample_class(rng).class_id for __ in range(600)]
        counts = np.bincount(draws, minlength=8)
        assert counts[0] > counts[-1]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ClassTaxonomy(0, IngredientLexicon())


class TestInstructionGrammar:
    def test_generates_sentence_arc(self):
        grammar = InstructionGrammar()
        sentences = grammar.generate(["tomato", "garlic", "pasta"], RNG(2))
        assert 3 <= len(sentences) <= 8
        assert all(s.endswith((".", "!")) for s in sentences)

    def test_mentions_recipe_ingredients(self):
        grammar = InstructionGrammar()
        found = 0
        for seed in range(10):
            text = " ".join(grammar.generate(["broccoli", "tofu"], RNG(seed)))
            if "broccoli" in text or "tofu" in text:
                found += 1
        assert found >= 8

    def test_no_unfilled_placeholders(self):
        grammar = InstructionGrammar()
        for seed in range(20):
            for s in grammar.generate(["rice", "salmon", "ginger"],
                                      RNG(seed)):
                assert "{" not in s and "}" not in s

    def test_empty_ingredients_raises(self):
        with pytest.raises(ValueError):
            InstructionGrammar().generate([], RNG())

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            InstructionGrammar(min_sentences=1)
        with pytest.raises(ValueError):
            InstructionGrammar(min_sentences=4, max_sentences=3)


class TestRenderer:
    def test_output_shape_and_range(self):
        lex = IngredientLexicon()
        tax = ClassTaxonomy(4, lex)
        img = DishRenderer(size=16).render(tax[0], [lex["tomato"]], RNG(4))
        assert img.shape == (3, 16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_ingredient_color_visible(self):
        """A tomato-heavy dish must be redder than a broccoli-heavy one."""
        lex = IngredientLexicon()
        tax = ClassTaxonomy(4, lex)
        tomato = DishRenderer(size=16).render(
            tax[0], [lex["tomato"]] * 4, RNG(5))
        broccoli = DishRenderer(size=16).render(
            tax[0], [lex["broccoli"]] * 4, RNG(5))
        red_excess_tomato = tomato[0].mean() - tomato[1].mean()
        red_excess_broccoli = broccoli[0].mean() - broccoli[1].mean()
        assert red_excess_tomato > red_excess_broccoli

    def test_noise_makes_images_unique(self):
        lex = IngredientLexicon()
        tax = ClassTaxonomy(4, lex)
        renderer = DishRenderer(size=12)
        a = renderer.render(tax[0], [lex["corn"]], RNG(6))
        b = renderer.render(tax[0], [lex["corn"]], RNG(7))
        assert not np.allclose(a, b)

    def test_layouts_all_render(self):
        lex = IngredientLexicon()
        renderer = DishRenderer(size=12)
        tax = ClassTaxonomy(16, lex)
        layouts = {c.layout for c in tax.classes}
        assert layouts == {"disc", "grid", "stack", "bowl"}
        for cls in tax.classes[:16]:
            img = renderer.render(cls, [lex[n] for n in cls.core], RNG(8))
            assert np.isfinite(img).all()

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            DishRenderer(size=4)


class TestGenerator:
    def test_splits_partition_dataset(self, small_dataset):
        ds = small_dataset
        total = sum(len(ds.split_indices(s)) for s in ("train", "val", "test"))
        assert total == len(ds)

    def test_roughly_half_labeled(self, small_dataset):
        frac = small_dataset.labeled_fraction("train")
        assert 0.3 < frac < 0.7

    def test_labels_match_true_class_when_present(self, small_dataset):
        for recipe in small_dataset.recipes:
            if recipe.is_labeled:
                assert recipe.class_id == recipe.true_class_id

    def test_core_ingredients_always_present(self, small_dataset):
        ds = small_dataset
        for recipe in ds.recipes[:40]:
            cls = ds.taxonomy[recipe.true_class_id]
            for core in cls.core:
                assert core in recipe.ingredients

    def test_deterministic_given_seed(self):
        cfg = DatasetConfig(num_pairs=30, num_classes=4, image_size=12,
                            seed=9)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        assert [r.title for r in a.recipes] == [r.title for r in b.recipes]
        np.testing.assert_allclose(a.recipes[0].image, b.recipes[0].image)

    def test_titles_contain_class_name(self, small_dataset):
        ds = small_dataset
        for recipe in ds.recipes[:20]:
            assert ds.taxonomy[recipe.true_class_id].name in recipe.title

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(num_pairs=5)
        with pytest.raises(ValueError):
            DatasetConfig(labeled_fraction=1.5)
        with pytest.raises(ValueError):
            DatasetConfig(train_fraction=0.9, val_fraction=0.2)

    def test_summary_mentions_counts(self, small_dataset):
        text = small_dataset.summary()
        assert "150 pairs" in text
        assert "train" in text


class TestRecipeSchema:
    def test_without_ingredient(self):
        recipe = Recipe(0, "t", None, 1, ["broccoli", "tofu"],
                        ["Chop the broccoli.", "Fry the tofu."],
                        np.zeros((3, 8, 8)))
        edited = recipe.without_ingredient("broccoli")
        assert edited.ingredients == ["tofu"]
        assert edited.instructions == ["Fry the tofu."]
        # original untouched
        assert "broccoli" in recipe.ingredients

    def test_without_ingredient_missing_raises(self):
        recipe = Recipe(0, "t", None, 1, ["tofu"], ["Fry."],
                        np.zeros((3, 8, 8)))
        with pytest.raises(ValueError):
            recipe.without_ingredient("broccoli")

    def test_without_only_mentioned_keeps_fallback_sentence(self):
        recipe = Recipe(0, "t", None, 1, ["tofu", "rice"],
                        ["Fry the tofu."], np.zeros((3, 8, 8)))
        edited = recipe.without_ingredient("tofu")
        assert edited.instructions  # never empty


class TestFeaturizer:
    def test_corpus_shapes(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        n = len(small_dataset.split_indices("train"))
        assert corpus.ingredient_ids.shape == (n, 10)
        assert corpus.sentence_vectors.shape == (n, 6, 12)
        assert corpus.images.shape[0] == n
        assert len(corpus) == n

    def test_lengths_positive_and_bounded(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        assert (corpus.ingredient_lengths >= 1).all()
        assert (corpus.ingredient_lengths <= 10).all()
        assert (corpus.sentence_lengths >= 1).all()
        assert (corpus.sentence_lengths <= 6).all()

    def test_unlabeled_encoded_as_minus_one(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        recipes = small_dataset.split("train")
        for row, recipe in enumerate(recipes):
            expected = recipe.class_id if recipe.is_labeled else -1
            assert corpus.class_ids[row] == expected
            assert corpus.true_class_ids[row] == recipe.true_class_id

    def test_subset_selects_rows(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        sub = corpus.subset(np.array([3, 5]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.recipe_indices,
                                      corpus.recipe_indices[[3, 5]])

    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            RecipeFeaturizer().encode_split(small_dataset, "train")

    def test_ingredient_vectors_match_vocab(self, featurizer):
        vectors = featurizer.ingredient_vectors
        assert vectors.shape == (len(featurizer.ingredient_vocab), 12)


class TestBatcher:
    def test_batch_composition(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        batcher = PairBatcher(corpus, batch_size=20, seed=0)
        batch = batcher.sample_batch()
        labeled = (corpus.class_ids[batch] >= 0).sum()
        assert len(batch) == 20
        assert labeled == 10

    def test_epoch_length(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        batcher = PairBatcher(corpus, batch_size=20, seed=0)
        batches = list(batcher.epoch())
        assert len(batches) == batcher.batches_per_epoch
        assert all(len(b) == 20 for b in batches)

    def test_stratified_frequencies_track_distribution(self, small_dataset,
                                                       featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        batcher = PairBatcher(corpus, batch_size=40, seed=1)
        counts = np.zeros(16)
        for __ in range(60):
            batch = batcher.sample_batch()
            labels = corpus.class_ids[batch]
            for label in labels[labels >= 0]:
                counts[label] += 1
        observed = counts / counts.sum()
        pool = corpus.class_ids[corpus.class_ids >= 0]
        expected = np.bincount(pool, minlength=16) / len(pool)
        # head class should dominate in both
        assert abs(observed.argmax() - expected.argmax()) == 0

    def test_all_labeled_corpus_fallback(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        labeled_only = corpus.subset(np.flatnonzero(corpus.class_ids >= 0))
        batcher = PairBatcher(labeled_only, batch_size=10, seed=0)
        batch = batcher.sample_batch()
        assert (labeled_only.class_ids[batch] >= 0).all()

    def test_invalid_batch_size(self, small_dataset, featurizer):
        corpus = featurizer.encode_split(small_dataset, "train")
        with pytest.raises(ValueError):
            PairBatcher(corpus, batch_size=1)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=10, max_value=60))
def test_property_generator_any_size(num_pairs):
    cfg = DatasetConfig(num_pairs=num_pairs, num_classes=4, image_size=12,
                        seed=0)
    ds = generate_dataset(cfg)
    assert len(ds) == num_pairs
