"""Fault-injection harness: end-to-end recovery tests.

Run just this suite with ``pytest -m faults`` (or ``make faults``).
Each test injects a deterministic fault — NaN gradients, parameter
corruption, a mid-schedule kill, on-disk truncation, corrupt corpus
records — and asserts the robustness layer recovers the way the design
doc promises.
"""

import json

import numpy as np
import pytest

from repro.core import Trainer, TrainingConfig, build_scenario
from repro.data import (DatasetConfig, RecipeFeaturizer, export_recipe1m,
                        generate_dataset, import_recipe1m)
from repro.robustness import (CheckpointManager, CrashFault,
                              NaNGradientFault, NumericalHealthError,
                              ParamCorruptionFault, QuarantineReport,
                              SimulatedCrash, truncate_file)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def corpora():
    ds = generate_dataset(DatasetConfig(num_pairs=90, num_classes=5,
                                        image_size=12, seed=7))
    feat = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(ds)
    return {"dataset": ds, "featurizer": feat,
            "train": feat.encode_split(ds, "train"),
            "val": feat.encode_split(ds, "val")}


def make_trainer(corpora, fault=None, **overrides):
    base = dict(epochs=4, freeze_epochs=1, batch_size=16,
                learning_rate=2e-3, augment=True, eval_bag_size=13,
                eval_num_bags=1, seed=3, keep_checkpoints=99)
    base.update(overrides)
    model, config = build_scenario(
        "adamine", corpora["featurizer"], 5, 12,
        base_config=TrainingConfig(**base), latent_dim=12)
    return Trainer(model, config, fault_injector=fault)


class TestCrashResume:
    def test_resume_is_bitwise_identical(self, corpora, tmp_path):
        """The headline guarantee: kill mid-schedule, resume, and every
        remaining EpochStats matches the uninterrupted run exactly."""
        reference = make_trainer(corpora)
        ref_history = reference.fit(corpora["train"], corpora["val"],
                                    checkpoint_dir=tmp_path / "ref")

        crashed = make_trainer(corpora, fault=CrashFault(epoch=1))
        with pytest.raises(SimulatedCrash):
            crashed.fit(corpora["train"], corpora["val"],
                        checkpoint_dir=tmp_path / "run")

        resumed = make_trainer(corpora)
        history = resumed.resume(tmp_path / "run", corpora["train"],
                                 corpora["val"])
        assert [s.epoch for s in history] == [s.epoch for s in ref_history]
        for ours, reference_stats in zip(history, ref_history):
            assert ours == reference_stats  # dataclass equality: bitwise
        assert resumed.best_val_medr == reference.best_val_medr
        for (name, param), reference_param in zip(
                resumed.model.named_parameters(),
                dict(reference.model.named_parameters()).values()):
            np.testing.assert_array_equal(param.data, reference_param.data)

    def test_resume_falls_back_past_truncated_checkpoint(self, corpora,
                                                         tmp_path):
        """A checkpoint truncated by the crash itself must be skipped;
        resume restarts from the previous good epoch and still converges
        to the identical history."""
        reference = make_trainer(corpora)
        ref_history = reference.fit(corpora["train"], corpora["val"])

        crashed = make_trainer(corpora, fault=CrashFault(epoch=2))
        with pytest.raises(SimulatedCrash):
            crashed.fit(corpora["train"], corpora["val"],
                        checkpoint_dir=tmp_path)
        manager = CheckpointManager(tmp_path)
        truncate_file(manager.path_for_epoch(2), keep_fraction=0.3)

        resumed = make_trainer(corpora)
        history = resumed.resume(tmp_path, corpora["train"], corpora["val"])
        assert manager.latest(verify=False).name == "checkpoint-000003.npz"
        for ours, reference_stats in zip(history, ref_history):
            assert ours == reference_stats

    def test_resume_requires_a_loadable_checkpoint(self, corpora, tmp_path):
        from repro.robustness import CheckpointError

        trainer = make_trainer(corpora)
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            trainer.resume(tmp_path, corpora["train"], corpora["val"])


class TestNumericalFaults:
    def test_nan_gradients_are_skipped_not_fatal(self, corpora):
        fault = NaNGradientFault(steps=(7, 8))
        trainer = make_trainer(corpora, fault=fault)
        history = trainer.fit(corpora["train"], corpora["val"])
        assert fault.fired == [7, 8]
        assert trainer.health.skipped == 2
        assert sum(s.skipped_batches for s in history) == 2
        assert np.isfinite(history[-1].val_medr)
        assert trainer.health.params_healthy(
            trainer._optimizer.params)

    def test_nan_gradient_run_matches_clean_run_elsewhere(self, corpora):
        """Skipping a poisoned batch must not disturb the batches around
        it beyond the missing update itself (loss stays finite)."""
        trainer = make_trainer(corpora, fault=NaNGradientFault(steps=(6,)))
        history = trainer.fit(corpora["train"], corpora["val"])
        assert all(np.isfinite(s.train_loss) for s in history)

    def test_skip_budget_exhaustion_fails_loudly(self, corpora):
        fault = NaNGradientFault(steps=range(0, 50))
        trainer = make_trainer(corpora, fault=fault, skip_budget=3,
                               epochs=3)
        with pytest.raises(NumericalHealthError, match="skip budget"):
            trainer.fit(corpora["train"], corpora["val"])

    def test_param_corruption_triggers_rollback(self, corpora):
        fault = ParamCorruptionFault(step=6)
        trainer = make_trainer(corpora, fault=fault)
        history = trainer.fit(corpora["train"], corpora["val"])
        assert fault.fired == [6]
        assert trainer.health.rollbacks == 1
        assert np.isfinite(history[-1].val_medr)
        # the poisoned value must be gone from the live parameters
        assert trainer.health.params_healthy(trainer._optimizer.params)


class TestRunnerCheckpointing:
    def test_runner_resumes_completed_scenario(self, tmp_path):
        """A killed benchmark session picks its scenarios back up from
        disk instead of retraining from scratch."""
        from repro.experiments import ExperimentRunner

        first = ExperimentRunner(scale="test", checkpoint_dir=tmp_path)
        first.scenario("adamine")
        manager = CheckpointManager(tmp_path / "adamine")
        assert manager.latest() is not None

        second = ExperimentRunner(scale="test", checkpoint_dir=tmp_path)
        second.scenario("adamine")  # resumes (here: already complete)
        assert (second.trainer("adamine").history
                == first.trainer("adamine").history)
        assert (second.trainer("adamine").best_val_medr
                == first.trainer("adamine").best_val_medr)


class TestCorruptCorpus:
    def _export_with_damage(self, corpora, directory):
        paths = export_recipe1m(corpora["dataset"], directory)
        with open(paths["layer1"]) as handle:
            layer1 = json.load(handle)
        layer1[0]["ingredients"] = []            # empty ingredient list
        del layer1[1]["title"]                   # missing field
        layer1[2]["partition"] = "staging"       # unknown partition
        with open(paths["layer1"], "w") as handle:
            json.dump(layer1, handle)
        # NaN image for a fourth record
        images = dict(np.load(paths["images"]))
        rid = layer1[3]["id"]
        images[rid] = np.full_like(images[rid], np.nan)
        np.savez_compressed(paths["images"], **images)
        return [entry["id"] for entry in layer1[:4]]

    def test_strict_import_still_raises(self, corpora, tmp_path):
        self._export_with_damage(corpora, tmp_path)
        with pytest.raises((ValueError, KeyError)):
            import_recipe1m(tmp_path)

    def test_quarantine_import_skips_and_reports(self, corpora, tmp_path):
        damaged_ids = self._export_with_damage(corpora, tmp_path)
        report = QuarantineReport()
        dataset = import_recipe1m(tmp_path, quarantine=report)
        assert len(report) == 4
        assert sorted(report.ids()) == sorted(damaged_ids)
        assert len(dataset) == len(corpora["dataset"]) - 4
        reasons = " ".join(r.reason for r in report.records)
        assert "empty" in reasons
        assert "missing field" in reasons
        assert "partition" in reasons
        assert "NaN" in reasons
        # the surviving corpus is fully usable
        for name in ("train", "val", "test"):
            rows = dataset.split_indices(name)
            assert rows.max(initial=-1) < len(dataset)
