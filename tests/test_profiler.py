"""Continuous-profiling and memory-ledger tests.

Fast tests run in tier-1 on injected fakes (frames, threads, CPU
probe) by calling ``sample_once`` directly — no sampler thread, no
real clock.  Real-clock scenarios (sleep-vs-spin attribution, the
SlowShard + hot-spin flight-bundle acceptance, RSS-growth
accounting) carry ``@pytest.mark.profile`` and run via
``make profile-test``.
"""

import json
import math
import pathlib
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (MemoryLedger, MetricsRegistry, SamplingProfiler,
                       Telemetry, Tracer, approx_bytes, classify_thread,
                       parse_collapsed, render_flame, ring_bytes,
                       rss_bytes, top_frames)
from repro.obs.flight import FlightRecorder
from repro.obs.memledger import ndarray_bytes
from repro.obs.profiler import proc_cpu_seconds
from repro.obs.sanitize import json_safe
from repro.robustness import SlowShard
from repro.serving import (AdmissionConfig, ClusterConfig,
                           ResilientSearchService, ServiceConfig)

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)


@pytest.fixture(scope="module")
def world():
    return make_world(num_pairs=60, num_classes=4, seed=11)


# ----------------------------------------------------------------------
# Fakes: frames / threads / CPU clocks the sampler can be fed
# ----------------------------------------------------------------------
class FakeCode:
    def __init__(self, name, filename="fake.py"):
        self.co_name = name
        self.co_filename = filename


class FakeFrame:
    def __init__(self, names, filename="fake.py"):
        """``names`` root-first; the instance is the innermost frame."""
        prev = None
        for name in names[:-1]:
            node = _Node(FakeCode(name, filename), prev)
            prev = node
        self.f_code = FakeCode(names[-1], filename)
        self.f_back = prev


class _Node:
    def __init__(self, code, back):
        self.f_code = code
        self.f_back = back


class FakeThread:
    def __init__(self, ident, name, native_id=None):
        self.ident = ident
        self.name = name
        self.native_id = native_id if native_id is not None else ident


class SteppingCpu:
    """cpu_probe fake: tick() advances the clocks of chosen tids."""

    def __init__(self, tids):
        self.clocks = {tid: 0.0 for tid in tids}

    def tick(self, *tids):
        for tid in tids:
            self.clocks[tid] += 0.01

    def __call__(self, tids=None):
        return dict(self.clocks)


def make_profiler(frames, threads, cpu=None, **kwargs):
    return SamplingProfiler(
        frames_fn=lambda: dict(frames),
        threads_fn=lambda: list(threads),
        cpu_probe=cpu,
        **kwargs)


# ----------------------------------------------------------------------
# Thread-role classification and folded-profile helpers
# ----------------------------------------------------------------------
class TestClassification:
    @pytest.mark.parametrize("name,role", [
        ("gateway-conn-3", "gateway_handler"),
        ("gateway-acceptor", "gateway_control"),
        ("shard-primary-1", "shard_worker"),
        ("hedge-primary-0", "shard_worker"),
        ("ingest-compaction", "compaction"),
        ("profiler-sampler", "profiler"),
        ("loadgen-2", "loadgen"),
        ("MainThread", "main"),
        ("ThreadPoolExecutor-0_0", "other"),
    ])
    def test_prefix_mapping(self, name, role):
        assert classify_thread(name) == role

    def test_parse_round_trip(self):
        lines = ["main;cli.main;engine.search 7",
                 "shard_worker;cluster.query 3", "", "garbage"]
        parsed = parse_collapsed(lines)
        assert parsed == [(["main", "cli.main", "engine.search"], 7),
                          (["shard_worker", "cluster.query"], 3)]

    def test_top_frames_ranks_leaves_by_self_samples(self):
        lines = ["main;a.f;b.hot 8", "main;c.g;b.hot 4", "main;a.f 3"]
        top = top_frames(lines, n=2)
        assert top[0]["frame"] == "b.hot"
        assert top[0]["samples"] == 12
        assert top[0]["share"] == pytest.approx(12 / 15)
        assert top[1]["frame"] == "a.f"

    def test_render_flame_shows_shares_and_depth(self):
        art = render_flame(["main;a.f;b.hot 9", "main;a.f 1"],
                           width=80)
        assert "total samples: 10" in art
        assert "b.hot" in art and "90.0%" in art
        # depth-2 frame is indented under its parent
        lines = [l for l in art.splitlines() if "b.hot" in l]
        assert lines[0].startswith("    ")

    def test_render_flame_empty(self):
        assert render_flame([]) == "(no samples)"


# ----------------------------------------------------------------------
# Deterministic sampling: roles, CPU state, stages, bounded stacks
# ----------------------------------------------------------------------
class TestSampling:
    def test_cpu_clock_delta_splits_running_from_blocked(self):
        spin = FakeThread(1, "shard-s-0")
        idle = FakeThread(2, "gateway-conn-7")
        frames = {1: FakeFrame(["query", "dot"]),
                  2: FakeFrame(["handle", "recv"])}
        cpu = SteppingCpu([1, 2])
        prof = make_profiler(frames, [spin, idle], cpu)
        prof.sample_once()    # primes _last_cpu (heuristic pass)
        for _ in range(5):
            cpu.tick(1)              # only the spinner burns CPU
            prof.sample_once()
        snap = prof.snapshot()
        # 5 delta-attributed samples + 1 heuristic priming sample
        assert snap["roles"]["shard_worker"]["cpu"] == 6
        assert snap["roles"]["gateway_handler"]["blocked"] == 6
        assert snap["samples"] == 6

    def test_heuristic_fallback_without_cpu_probe(self):
        threads = [FakeThread(1, "shard-s-0"),
                   FakeThread(2, "shard-s-1")]
        frames = {1: FakeFrame(["query", "dot"]),
                  2: FakeFrame(["query", "wait"])}
        prof = make_profiler(frames, threads, cpu=None)
        prof.sample_once()
        roles = prof.snapshot()["roles"]["shard_worker"]
        assert roles == {"cpu": 1, "blocked": 1}

    def test_stage_attribution_via_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        registry = MetricsRegistry()
        ident = threading.get_ident()
        thread = FakeThread(ident, "MainThread")
        frames = {ident: FakeFrame(["service.search", "engine.embed"])}
        cpu = SteppingCpu([ident])
        prof = make_profiler(frames, [thread], cpu, tracer=tracer,
                             registry=registry)
        prof.sample_once()
        with tracer.span("embed"):
            cpu.tick(ident)
            prof.sample_once()       # on-CPU inside the embed span
            prof.sample_once()       # clock stalled -> blocked
        prof.sample_once()           # span closed -> no stage
        snap = prof.snapshot()
        assert snap["stages"] == {"embed": {"cpu": 1, "blocked": 1}}
        family = registry.get("profiler_stage_samples_total")
        assert family.labels(stage="embed", state="cpu").value == 1

    def test_innermost_open_span_wins(self):
        tracer = Tracer(clock=FakeClock())
        ident = threading.get_ident()
        frames = {ident: FakeFrame(["a.b"])}
        prof = make_profiler(frames,
                             [FakeThread(ident, "MainThread")],
                             tracer=tracer)
        with tracer.span("request"):
            with tracer.span("index"):
                prof.sample_once()
        stages = prof.snapshot()["stages"]
        assert list(stages) == ["index"]

    def test_bounded_stacks_fold_into_overflow(self):
        thread = FakeThread(1, "shard-s-0")
        prof = SamplingProfiler(
            frames_fn=lambda: {},      # unused; we drive _record_stack
            threads_fn=lambda: [thread],
            cpu_probe=None, max_stacks=4)
        for i in range(20):
            frames = {1: FakeFrame([f"mod.fn_{i}"])}
            prof._frames_fn = lambda f=frames: dict(f)
            prof.sample_once()
        snap = prof.snapshot()
        assert snap["distinct_stacks"] <= 5   # 4 + overflow bucket
        assert snap["dropped_stacks"] == 16
        overflow = [l for l in prof.collapsed()
                    if "<overflow>" in l]
        assert overflow and overflow[0].startswith("shard_worker;")

    def test_own_stack_counted_as_role_but_not_folded(self):
        prof = make_profiler({7: FakeFrame(["profiler.sample_once"])},
                             [FakeThread(7, "whatever")])
        prof._own_ident = 7
        prof.sample_once()
        snap = prof.snapshot()
        assert "profiler" in snap["roles"]
        assert prof.collapsed() == []

    def test_unknown_thread_ident_still_sampled(self):
        # frames for a thread not in threads_fn (it exited between
        # the two reads) must not crash and classify as other
        prof = make_profiler({99: FakeFrame(["x.y"])}, [])
        prof.sample_once()
        assert "other" in prof.snapshot()["roles"]

    def test_reset_clears_aggregates(self):
        prof = make_profiler({1: FakeFrame(["a.b"])},
                             [FakeThread(1, "MainThread")])
        prof.sample_once()
        prof.reset()
        snap = prof.snapshot()
        assert snap["samples"] == 0
        assert snap["distinct_stacks"] == 0
        assert snap["roles"] == {}

    def test_snapshot_is_json_safe(self):
        prof = make_profiler({1: FakeFrame(["a.b"])},
                             [FakeThread(1, "shard-x-1")])
        prof.sample_once()
        json.dumps(json_safe(prof.snapshot()))

    def test_overhead_is_measured(self):
        prof = make_profiler({1: FakeFrame(["a.b"])},
                             [FakeThread(1, "MainThread")])
        for _ in range(3):
            prof.sample_once()
        overhead = prof.snapshot()["self_overhead"]
        assert overhead["seconds"] > 0.0
        assert overhead["per_sample_us"] > 0.0


# ----------------------------------------------------------------------
# Sampler lifecycle: idempotent start/stop, bounded capture windows
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_start_stop_idempotent_and_restartable(self):
        prof = SamplingProfiler(hz=200.0)
        assert prof.start() is True
        assert prof.start() is False     # second start is a no-op
        assert prof.running
        assert prof.stop() is True
        assert prof.stop() is False      # second stop is a no-op
        assert not prof.running
        assert prof.start() is True      # restart works
        prof.stop()
        assert prof.snapshot()["samples"] >= 1

    def test_set_hz_updates_interval(self):
        prof = SamplingProfiler(hz=10.0)
        prof.set_hz(100.0)
        assert prof.interval == pytest.approx(0.01)

    def test_capture_window_starts_and_auto_stops(self):
        registry = MetricsRegistry()
        prof = SamplingProfiler(hz=200.0, registry=registry,
                                window_s=0.15)
        assert prof.capture_window() is True
        assert prof.running
        deadline = time.monotonic() + 5.0
        while prof.running and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not prof.running, "window never closed"
        snap = prof.snapshot()
        assert snap["windows"] == 1
        assert snap["samples"] > 0
        assert registry.get("profiler_windows_total") \
            .labels().value == 1

    def test_window_never_stops_an_already_running_sampler(self):
        prof = SamplingProfiler(hz=200.0)
        prof.start()
        assert prof.capture_window(0.05) is False
        time.sleep(0.3)
        assert prof.running          # window must not kill it
        prof.stop()

    def test_on_alert_is_a_capture_hook(self):
        prof = SamplingProfiler(hz=200.0, window_s=0.1)
        prof.on_alert(alert=None)
        assert prof.snapshot()["windows"] == 1
        deadline = time.monotonic() + 5.0
        while prof.running and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not prof.running
        assert prof.snapshot()["samples"] > 0


# ----------------------------------------------------------------------
# Memory ledger
# ----------------------------------------------------------------------
class TestMemoryLedger:
    def test_int_and_dict_reporters_flatten(self):
        ledger = MemoryLedger()
        ledger.register("wal", lambda: 1024)
        ledger.register("index", lambda: {"image": 10, "recipe": 20})
        values, errors = ledger.components()
        assert values == {"wal": 1024, "index.image": 10,
                          "index.recipe": 20}
        assert errors == {}
        snap = ledger.snapshot()
        assert snap["tracked_bytes"] == 1054

    def test_raising_reporter_is_contained(self):
        ledger = MemoryLedger()
        ledger.register("good", lambda: 7)
        ledger.register("bad", lambda: 1 / 0)
        values, errors = ledger.components()
        assert values == {"good": 7}
        assert "ZeroDivisionError" in errors["bad"]
        snap = ledger.snapshot()
        assert snap["tracked_bytes"] == 7
        assert "bad" in snap["errors"]
        json.dumps(json_safe(snap))      # never raises

    def test_unregister_and_names(self):
        ledger = MemoryLedger()
        ledger.register("a", lambda: 1)
        ledger.register("b", lambda: 2)
        ledger.unregister("a")
        assert ledger.names() == ["b"]

    def test_rss_and_untracked(self):
        ledger = MemoryLedger()
        ledger.register("tiny", lambda: 1)
        snap = ledger.snapshot()
        assert snap["rss_bytes"] is None or snap["rss_bytes"] > 0
        if snap["rss_bytes"] is not None:
            assert snap["untracked_bytes"] == snap["rss_bytes"] - 1

    def test_gauges_updated(self):
        registry = MetricsRegistry()
        ledger = MemoryLedger(registry=registry)
        ledger.register("index", lambda: 4096)
        ledger.snapshot()
        family = registry.get("memory_component_bytes")
        assert family.labels(component="index").value == 4096.0
        assert registry.get("memory_tracked_bytes") \
            .labels().value == 4096.0

    def test_tracemalloc_top_appears_only_when_enabled(self):
        ledger = MemoryLedger()
        assert "tracemalloc_top" not in ledger.snapshot()
        assert ledger.enable_tracemalloc(frames=1)
        blob = [bytes(4096) for _ in range(64)]   # grow since baseline
        snap = ledger.snapshot()
        assert "tracemalloc_top" in snap
        assert isinstance(snap["tracemalloc_top"], list)
        json.dumps(json_safe(snap))
        ledger.disable_tracemalloc()
        assert "tracemalloc_top" not in ledger.snapshot()
        del blob

    def test_helpers(self):
        arr = np.zeros((4, 8))
        assert ndarray_bytes(arr, None, arr) == 2 * arr.nbytes
        assert ring_bytes([]) == 0
        one = approx_bytes({"k": "v" * 50})
        many = ring_bytes([{"k": "v" * 50} for _ in range(100)])
        assert many == pytest.approx(100 * one, rel=0.05)
        # cycle safety
        loop = []
        loop.append(loop)
        assert approx_bytes(loop) > 0
        # nested beats shallow
        nested = {"a": list(range(100))}
        assert approx_bytes(nested) > sys.getsizeof(nested)


# ----------------------------------------------------------------------
# Sanitizer: everything dumps, nothing raises (property)
# ----------------------------------------------------------------------
def _adversarial():
    scalars = st.one_of(
        st.none(), st.booleans(), st.integers(),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=8),
        st.binary(max_size=8),
        st.sampled_from([float("nan"), float("inf"), -float("inf"),
                         object(), pathlib.Path("/tmp/x"),
                         np.float64("nan"), np.int32(7),
                         np.array([1.0, float("inf")])]))
    keys = st.one_of(st.text(max_size=6), st.integers(),
                     st.booleans(), st.none(),
                     st.tuples(st.integers(), st.text(max_size=3)))
    return st.recursive(
        scalars,
        lambda inner: st.one_of(
            st.lists(inner, max_size=4),
            st.dictionaries(keys, inner, max_size=4),
            st.frozensets(st.integers(), max_size=4),
            st.tuples(inner, inner)),
        max_leaves=20)


class TestSanitize:
    @settings(max_examples=120, deadline=None)
    @given(value=_adversarial())
    def test_json_safe_output_always_dumps(self, value):
        json.dumps(json_safe(value))

    def test_non_finite_floats_become_null(self):
        out = json_safe({"a": float("nan"), "b": float("inf"),
                         "c": 1.5})
        assert out == {"a": None, "b": None, "c": 1.5}

    def test_non_string_keys_coerced(self):
        out = json_safe({(1, 2): "x", 3: "y"})
        assert out == {"(1, 2)": "x", 3: "y"}
        json.dumps(out)

    def test_numpy_and_fallback(self):
        out = json_safe({"arr": np.array([1.0, float("nan")]),
                         "obj": object()})
        assert out["arr"] == [1.0, None]
        assert isinstance(out["obj"], str)


# ----------------------------------------------------------------------
# Service wiring: ledger + profiler in stats(), ring-buffer reporters
# ----------------------------------------------------------------------
class TestServiceWiring:
    def test_stats_has_memory_and_profiler_and_dumps(self, world):
        dataset, featurizer = world
        clock = FakeClock()
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(deadline=10.0),
            clock=clock, sleep=clock.sleep)
        ingredients = known_ingredients(service._active.engine, 2)
        assert service.search_by_ingredients(ingredients, k=3).ok
        stats = service.stats()
        json.dumps(json_safe(stats))
        memory = stats["memory"]
        comps = memory["components"]
        assert comps["index.image"] > 0
        assert comps["index.recipe"] > 0
        assert "tracer_ring" in comps
        assert "event_ring" in comps
        assert "outcome_ring" in comps
        assert memory["tracked_bytes"] >= comps["index.image"]
        assert stats["profiler"]["running"] is False
        assert stats["profiler"]["samples"] == 0

    def test_start_profiler_sets_hz(self, world):
        dataset, featurizer = world
        clock = FakeClock()
        service = ResilientSearchService(
            make_engine(dataset, featurizer), ServiceConfig(),
            clock=clock, sleep=clock.sleep)
        prof = service.start_profiler(hz=97.0)
        try:
            assert prof.running and prof.hz == 97.0
            assert service.stats()["profiler"]["running"] is True
        finally:
            prof.stop()

    def test_ring_buffer_reporters(self):
        telemetry = Telemetry(clock=FakeClock(),
                              trace_sample_fraction=1.0)
        with telemetry.tracer.span("request"):
            pass
        telemetry.events.emit("test", "hello", detail=1)
        assert telemetry.tracer.retained_bytes() > 0
        assert telemetry.events.retained_bytes() > 0
        assert telemetry.sampler.retained_bytes() > 0

    def test_open_spans_by_thread(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.open_spans_by_thread() == {}
        with tracer.span("request"):
            with tracer.span("embed"):
                spans = tracer.open_spans_by_thread()
                assert spans[threading.get_ident()].name == "embed"
        assert tracer.open_spans_by_thread() == {}


# ----------------------------------------------------------------------
# Real-clock scenarios (-m profile)
# ----------------------------------------------------------------------
def _spin(stop, sink=[0.0]):
    x = 1.0001
    while not stop.is_set():
        for _ in range(2000):
            x = x * x % 1.7
        sink[0] = x


@pytest.mark.profile
class TestAttributionRealClock:
    def test_sleep_vs_spin(self):
        stop = threading.Event()
        spinner = threading.Thread(target=_spin, args=(stop,),
                                   name="shard-spin-0", daemon=True)
        sleeper = threading.Thread(target=stop.wait,
                                   name="gateway-conn-9", daemon=True)
        prof = SamplingProfiler(hz=61.0)
        spinner.start()
        sleeper.start()
        prof.start()
        time.sleep(1.0)
        prof.stop()
        stop.set()
        spinner.join()
        sleeper.join()
        roles = prof.snapshot()["roles"]
        spin_cpu = roles["shard_worker"].get("cpu", 0)
        spin_blk = roles["shard_worker"].get("blocked", 0)
        idle_cpu = roles["gateway_handler"].get("cpu", 0)
        idle_blk = roles["gateway_handler"].get("blocked", 0)
        assert spin_cpu / max(spin_cpu + spin_blk, 1) > 0.5
        assert idle_blk / max(idle_cpu + idle_blk, 1) > 0.8
        folded = "\n".join(prof.collapsed())
        assert "shard_worker;" in folded
        assert "_spin" in folded

    def test_proc_cpu_seconds_tracks_burn(self):
        before = proc_cpu_seconds()
        if before is None:
            pytest.skip("no /proc on this platform")
        t0 = time.monotonic()
        x = 1.0001
        while time.monotonic() - t0 < 0.25:
            x = x * x % 1.7
        after = proc_cpu_seconds()
        me = threading.current_thread().native_id
        assert after[me] > before.get(me, 0.0)

    def test_overhead_fraction_small_at_default_hz(self):
        prof = SamplingProfiler()      # DEFAULT_HZ
        prof.start()
        time.sleep(1.0)
        prof.stop()
        frac = prof.snapshot()["self_overhead"]["fraction"]
        assert frac < 0.05


@pytest.mark.profile
class TestLedgerRssAccounting:
    def test_component_sum_tracks_rss_growth(self):
        if rss_bytes() is None:
            pytest.skip("no /proc on this platform")
        ledger = MemoryLedger()        # baseline = current RSS
        arrays = [np.ones((8192, 1024)) for _ in range(2)]  # 128 MiB
        ledger.register(
            "index", lambda: ndarray_bytes(*arrays))
        snap = ledger.snapshot()
        growth = snap["rss_growth_bytes"]
        tracked = snap["tracked_bytes"]
        assert tracked == 2 * 8192 * 1024 * 8
        assert growth > 0
        assert abs(tracked - growth) / growth < 0.2
        del arrays


@pytest.mark.profile
class TestFlightBundleAcceptance:
    """Induced SlowShard + hot-spin: the bundle's profile must blame
    the spin on the shard-worker role and the memory ledger must
    itemize the serving components."""

    def test_profile_and_memory_land_in_bundle(self, world, tmp_path):
        dataset, featurizer = world
        fault = SlowShard(queries=range(10_000), shard_id=0,
                          delay=0.02, sleep=time.sleep)
        import random as _random
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(
                deadline=5.0, admission=AdmissionConfig(),
                cluster=ClusterConfig(num_shards=2, replication=1)),
            rng=_random.Random(0), cluster_faults=fault)
        stop = threading.Event()
        spinner = threading.Thread(target=_spin, args=(stop,),
                                   name="shard-hot-9", daemon=True)
        spinner.start()
        prof = service.start_profiler(hz=97.0)
        ingredients = known_ingredients(service._active.engine, 2)
        t0 = time.monotonic()
        while time.monotonic() - t0 < 1.0:
            assert service.search_by_ingredients(ingredients,
                                                 k=3).ok
        prof.stop()
        stop.set()
        spinner.join()
        service.telemetry.events.emit(
            "profile", "capture complete for acceptance bundle")

        recorder = FlightRecorder(
            service.telemetry, tmp_path / "flight",
            profiler=prof, memory=service.memory,
            min_interval_s=0.0)
        bundle = recorder.dump(reason="profile-acceptance")

        manifest = json.loads(
            (bundle / "manifest.json").read_text())
        assert manifest["has_profile"] and manifest["has_memory"]

        profile_txt = (bundle / "profile.txt").read_text()
        folded = [l for l in profile_txt.splitlines()
                  if l and not l.startswith("#")]
        spin_lines = [l for l in folded if "_spin" in l]
        assert spin_lines, "hot spin never sampled"
        assert all(l.startswith("shard_worker;")
                   for l in spin_lines)
        top = top_frames(folded, n=5)
        assert any("_spin" in entry["frame"] for entry in top)
        # blocked SlowShard time attributed to the shard_query stage
        snap = prof.snapshot()
        assert snap["stages"].get("shard_query", {}) \
            .get("blocked", 0) > 0

        memory = json.loads((bundle / "memory.json").read_text())
        comps = memory["components"]
        for name in ("index.image", "index.recipe", "tracer_ring",
                     "event_ring", "outcome_ring"):
            assert comps.get(name, 0) > 0, name
        assert memory["tracked_bytes"] == sum(comps.values())
