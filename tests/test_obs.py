"""Tests for the telemetry layer (:mod:`repro.obs`) and its wiring
into the trainer and the resilient serving layer.

Run alone with ``pytest -m obs`` (or ``make telemetry-test``).  The
final class doubles as a chaos scenario: injected serving faults must
move the breaker gauges and the shed/degraded counters.
"""

import json
import random
import threading

import numpy as np
import pytest

from repro.core import Trainer, TrainingConfig, build_scenario
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.obs import (DEFAULT_BUCKETS, EventLog, MetricError,
                       MetricsRegistry, Telemetry, Timer, Tracer,
                       last_metrics_snapshot, parse_prometheus,
                       read_jsonl)
from repro.robustness import NaNEmbedFault
from repro.serving import (CircuitState, ResilientSearchService,
                           RetryPolicy, ServiceConfig)
from repro.serving.service import BREAKER_STATE_VALUES

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestCounterAndGauge:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", labels=("a",))
        assert registry.counter("x_total", labels=("a",)) is first
        with pytest.raises(MetricError):
            registry.gauge("x_total")
        with pytest.raises(MetricError):
            registry.counter("x_total", labels=("b",))

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter("c", labels=("k",))
        counter.labels(k="a").inc(2)
        counter.labels(k="b").inc(3)
        assert counter.labels(k="a").value == 2
        assert counter.labels(k="b").value == 3

    def test_counter_thread_safety(self):
        counter = MetricsRegistry().counter("c_total")
        gauge = MetricsRegistry().gauge("g")

        def work():
            for __ in range(1000):
                counter.inc()
                gauge.inc()

        threads = [threading.Thread(target=work) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert gauge.value == 8000


class TestHistogram:
    def test_bucket_edges_are_le_inclusive(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 7.0):
            hist.observe(value)
        # le-inclusive: 1.0 falls in the le=1 bucket, 2.0 in le=2,
        # 5.0 in le=5, 7.0 in the +Inf overflow bucket.
        assert hist.bucket_counts() == [2, 2, 1, 1]
        assert hist.cumulative() == [2, 4, 5, 6]
        assert hist.count == 6
        assert hist.sum == pytest.approx(17.0)

    def test_exact_sum_and_count_survive_prometheus(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(3.0)
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["lat_count"][()] == 3
        assert parsed["lat_sum"][()] == pytest.approx(3.55)
        assert parsed["lat_bucket"][(("le", "0.1"),)] == 1
        assert parsed["lat_bucket"][(("le", "1"),)] == 2
        assert parsed["lat_bucket"][(("le", "+Inf"),)] == 3

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests",
                         labels=("kind",)).labels(kind="a").inc(7)
        registry.gauge("temp", "state").set(2)
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        return registry

    def test_prometheus_round_trip(self):
        registry = self._populated()
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["req_total"][(("kind", "a"),)] == 7
        assert parsed["temp"][()] == 2
        assert parsed["h_count"][()] == 2

    def test_dict_round_trip_preserves_everything(self):
        registry = self._populated()
        rebuilt = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict())))
        assert rebuilt.to_prometheus() == registry.to_prometheus()


# ----------------------------------------------------------------------
# Tracing and timing
# ----------------------------------------------------------------------
class TestSpans:
    def test_parenting_and_completion_order(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("request", kind="x") as request:
            with tracer.span("embed"):
                clock.sleep(0.010)
            with tracer.span("index"):
                clock.sleep(0.002)
        # children recorded on the parent, in completion order
        assert [c.name for c in request.children] == ["embed", "index"]
        assert request.children[0].parent_id == request.span_id
        assert request.children[0].duration == pytest.approx(0.010)
        # ring buffer: children before parents
        assert [r.name for r in tracer.finished] == [
            "embed", "index", "request"]
        assert request.record.duration == pytest.approx(0.012)
        # all three share the request's trace id
        assert {r.trace_id for r in tracer.finished} == {
            request.trace_id}

    def test_error_spans_keep_status_and_never_swallow(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("bad") as span:
                raise ValueError("boom")
        assert span.record.status == "error"
        assert "boom" in span.record.error

    def test_attributes_are_nested_in_events(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", kind="shadowing"):  # must not clobber
            pass
        event = tracer.to_events()[0]
        assert event["kind"] == "span"
        assert event["attributes"] == {"kind": "shadowing"}

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(clock=FakeClock(), max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.finished] == ["s2", "s3", "s4"]

    def test_threads_do_not_share_lineage(self):
        tracer = Tracer(clock=FakeClock())
        parents = []

        def worker():
            with tracer.span("child") as span:
                parents.append(span.parent_id)

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert parents == [None]


class TestTimer:
    def test_feeds_histogram_and_records_last(self):
        clock = FakeClock()
        hist = MetricsRegistry().histogram("t", buckets=(0.01, 0.1))
        timer = Timer(histogram=hist, clock=clock)
        with timer:
            clock.sleep(0.05)
        assert timer.last == pytest.approx(0.05)
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.05)

    def test_decorator_times_each_call(self):
        clock = FakeClock()
        hist = MetricsRegistry().histogram("t")
        timer = Timer(histogram=hist, clock=clock)

        @timer
        def work():
            clock.sleep(0.001)

        work()
        work()
        assert hist.count == 2

    def test_failures_are_timed_too(self):
        clock = FakeClock()
        hist = MetricsRegistry().histogram("t")
        with pytest.raises(RuntimeError):
            with Timer(histogram=hist, clock=clock):
                clock.sleep(0.2)
                raise RuntimeError("fail")
        assert hist.count == 1


class TestEventLog:
    def test_printer_only_sees_messages(self):
        printed = []
        log = EventLog(printer=printed.append, clock=FakeClock())
        log.emit("quiet", detail=1)
        log.emit("loud", message="hello", detail=2)
        assert printed == ["hello"]
        assert len(log) == 2
        assert [e["detail"] for e in log.of_type("quiet")] == [1]


# ----------------------------------------------------------------------
# Trainer instrumentation: the mining curriculum is observable
# ----------------------------------------------------------------------
class TestTrainerTelemetry:
    @pytest.fixture(scope="class")
    def trained(self, tmp_path_factory):
        ds = generate_dataset(DatasetConfig(num_pairs=90, num_classes=5,
                                            image_size=12, seed=7))
        feat = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(ds)
        model, config = build_scenario(
            "adamine", feat, 5, 12,
            base_config=TrainingConfig(epochs=2, freeze_epochs=0,
                                       batch_size=8, augment=False,
                                       eval_bag_size=10, eval_num_bags=1),
            latent_dim=8)
        path = tmp_path_factory.mktemp("obs") / "telemetry.jsonl"
        telemetry = Telemetry(jsonl_path=path)
        trainer = Trainer(
            model, config,
            class_to_group=ds.taxonomy.class_to_group_ids(),
            telemetry=telemetry)
        trainer.fit(feat.encode_split(ds, "train"),
                    feat.encode_split(ds, "val"))
        telemetry.close()
        return trainer, path

    def test_epoch_events_carry_beta_prime_for_both_losses(self, trained):
        __, path = trained
        epochs = [r for r in read_jsonl(path)
                  if r.get("event") == "epoch"]
        assert [e["epoch"] for e in epochs] == [0, 1]
        for event in epochs:
            assert event["beta_instance"] > 0
            assert event["beta_semantic"] > 0
            assert 0 < event["instance_active_fraction"] <= 1

    def test_epoch_spans_cover_training(self, trained):
        trainer, path = trained
        spans = [r for r in read_jsonl(path) if r.get("kind") == "span"]
        assert [s["name"] for s in spans] == ["train_epoch",
                                              "train_epoch"]
        assert trainer.telemetry.tracer.finished  # in-memory too

    def test_final_snapshot_exposes_curriculum_counters(self, trained):
        trainer, path = trained
        snapshot = last_metrics_snapshot(path)
        assert snapshot is not None
        rebuilt = MetricsRegistry.from_dict(snapshot)
        parsed = parse_prometheus(rebuilt.to_prometheus())
        beta = parsed["train_informative_triplets_total"]
        assert beta[(("loss", "instance"),)] > 0
        assert beta[(("loss", "semantic"),)] > 0
        # cumulative beta-prime can never exceed the triplets mined
        total = parsed["train_triplets_total"]
        for key, value in beta.items():
            assert value <= total[key]
        assert parsed["train_steps_total"][()] > 0
        assert parsed["train_grad_norm_count"][()] > 0
        # history and gauges agree on the last epoch's loss breakdown
        last = trainer.history[-1]
        loss = parsed["train_epoch_loss"]
        assert loss[(("component", "instance"),)] == pytest.approx(
            last.instance_loss)
        assert loss[(("component", "semantic"),)] == pytest.approx(
            last.semantic_loss)

    def test_history_beta_matches_events(self, trained):
        trainer, path = trained
        epochs = [r for r in read_jsonl(path)
                  if r.get("event") == "epoch"]
        for stats, event in zip(trainer.history, epochs):
            assert stats.instance_beta == event["beta_instance"]
            assert stats.semantic_beta == event["beta_semantic"]


# ----------------------------------------------------------------------
# Serving instrumentation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    return make_world()


def make_service(world, faults=None, **overrides):
    dataset, featurizer = world
    engine = make_engine(dataset, featurizer)
    clock = FakeClock()
    defaults = dict(
        deadline=1.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        breaker_failure_threshold=3,
        breaker_reset_after=5.0,
        breaker_half_open_successes=2,
    )
    defaults.update(overrides)
    service = ResilientSearchService(
        engine, ServiceConfig(**defaults), clock=clock,
        sleep=clock.sleep, rng=random.Random(0), faults=faults)
    return service, clock


class TestServiceTelemetry:
    def test_request_outcome_carries_stage_breakdown(self, world):
        service, __ = make_service(world)
        ingredients = known_ingredients(service._active.engine)
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.outcome.status == "ok"
        assert set(response.outcome.stage_ms) == {
            "admit", "embed", "index", "materialize"}
        stats = service.stats()
        assert set(stats["stage_latency_ms"]) == {
            "admit", "embed", "index", "materialize"}
        assert stats["stage_latency_ms"]["embed"]["count"] == 1

    def test_prometheus_dump_has_serving_series(self, world):
        service, __ = make_service(world)
        ingredients = known_ingredients(service._active.engine)
        service.search_by_ingredients(ingredients, k=3)
        parsed = parse_prometheus(
            service.telemetry.registry.to_prometheus())
        assert parsed["serving_requests_total"][
            (("kind", "ingredients"), ("status", "ok"))] == 1
        assert parsed["serving_request_seconds_count"][()] == 1
        for stage in ("admit", "embed", "index", "materialize"):
            assert parsed["serving_stage_seconds_count"][
                (("stage", stage),)] == 1
            assert (("stage", stage),) in \
                parsed["serving_deadline_remaining_seconds_count"]
        assert parsed["serving_stage_attempts_total"][
            (("stage", "embed"),)] == 1
        for dependency in ("embed", "index"):
            assert parsed["serving_breaker_state"][
                (("dependency", dependency),)] == 0
        assert parsed["serving_inflight"][()] == 0
        assert parsed["serving_generation"][()] == 0

    def test_request_spans_parent_their_stages(self, world):
        service, __ = make_service(world)
        ingredients = known_ingredients(service._active.engine)
        service.search_by_ingredients(ingredients, k=3)
        events = service.telemetry.tracer.to_events()
        request = [e for e in events if e["name"] == "request"][-1]
        stages = [e for e in events
                  if e.get("parent_id") == request["span_id"]]
        assert [s["name"] for s in stages] == [
            "admit", "embed", "index", "materialize"]
        assert request["attributes"]["status"] == "ok"

    def test_swap_emits_event_and_moves_generation_gauge(self, world):
        service, __ = make_service(world)
        report = service.swap_corpus(service._active.engine.corpus)
        assert report.ok and report.duration_s >= 0
        assert "ms" in report.summary()
        parsed = parse_prometheus(
            service.telemetry.registry.to_prometheus())
        assert parsed["serving_generation"][()] == 1
        assert parsed["serving_swaps_total"][
            (("result", "swapped"),)] == 1
        assert parsed["serving_canaries_total"][()] == report.canaries_run
        swap_events = service.telemetry.events.of_type("swap")
        assert len(swap_events) == 1 and swap_events[0]["ok"]


# ----------------------------------------------------------------------
# Chaos: injected faults must show up on the dashboards
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestTelemetryUnderFaults:
    def test_breaker_gauge_and_degraded_counter_move(self, world):
        fault = NaNEmbedFault(requests=[0])
        service, __ = make_service(world, faults=fault)
        ingredients = known_ingredients(service._active.engine)
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.outcome.status == "degraded"
        assert service.embed_breaker.state is CircuitState.OPEN
        parsed = parse_prometheus(
            service.telemetry.registry.to_prometheus())
        assert parsed["serving_breaker_state"][
            (("dependency", "embed"),)] == \
            BREAKER_STATE_VALUES[CircuitState.OPEN]
        assert parsed["serving_breaker_transitions_total"][
            (("dependency", "embed"), ("state", "open"))] == 1
        assert parsed["serving_requests_total"][
            (("kind", "ingredients"), ("status", "degraded"))] == 1
        # every NaN retry was counted as an attempt
        assert parsed["serving_stage_attempts_total"][
            (("stage", "embed"),)] == 3
        # the failed embed stage still reported its latency, and the
        # degraded fallback appears in the outcome's stage breakdown
        assert set(response.outcome.stage_ms) == {
            "admit", "embed", "degraded", "materialize"}
        breaker_events = service.telemetry.events.of_type("breaker")
        assert [e["state"] for e in breaker_events] == ["open"]

    def test_shed_requests_hit_the_shed_counter(self, world):
        service, __ = make_service(world, max_inflight=0)
        ingredients = known_ingredients(service._active.engine)
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.outcome.status == "shed"
        assert set(response.outcome.stage_ms) == {"admit"}
        parsed = parse_prometheus(
            service.telemetry.registry.to_prometheus())
        assert parsed["serving_requests_total"][
            (("kind", "ingredients"), ("status", "shed"))] == 1
        assert service.stats()["statuses"] == {"shed": 1}

    def test_recovery_closes_the_gauge_again(self, world):
        fault = NaNEmbedFault(requests=[0])
        service, clock = make_service(world, faults=fault)
        ingredients = known_ingredients(service._active.engine)
        service.search_by_ingredients(ingredients, k=3)
        clock.sleep(5.0)
        service.search_by_ingredients(ingredients, k=3)
        service.search_by_ingredients(ingredients, k=3)
        assert service.embed_breaker.state is CircuitState.CLOSED
        parsed = parse_prometheus(
            service.telemetry.registry.to_prometheus())
        assert parsed["serving_breaker_state"][
            (("dependency", "embed"),)] == 0
        transitions = parsed["serving_breaker_transitions_total"]
        assert transitions[(("dependency", "embed"),
                            ("state", "open"))] == 1
        assert transitions[(("dependency", "embed"),
                            ("state", "half_open"))] == 1
        assert transitions[(("dependency", "embed"),
                            ("state", "closed"))] == 1
