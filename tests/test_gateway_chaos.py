"""Real-socket gateway chaos suite (``-m gateway``).

Every test here talks to a live :class:`~repro.serving.gateway.Gateway`
over actual TCP on loopback — the point is to attack the wire, not the
library.  The misbehaving clients come from
:mod:`repro.serving.netfaults`; the acceptance bar is the drain
contract (every accepted request completes or gets a clean 503, never
a reset), the slowloris reaper, and swap-aware cache behaviour under
real degradation.
"""

import contextlib
import http.client
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.serving import (AdmissionConfig, CacheConfig, Gateway,
                           GatewayConfig, HttpRequester, LoadGenerator,
                           ResilientSearchService, ServiceConfig,
                           TenantLoad, TenantPolicy)
from repro.serving.netfaults import (ConnectionFlood,
                                     DisconnectMidResponse, SlowClient,
                                     TruncatedBody, read_response)

from ._serving_util import FakeClock, known_ingredients, make_engine, \
    make_world

pytestmark = pytest.mark.gateway

HOST = "127.0.0.1"


@pytest.fixture(scope="module")
def world():
    return make_world(num_pairs=40)


@contextlib.contextmanager
def running_gateway(world, *, service_config=None, gateway_config=None,
                    clock=time.monotonic, ingest_log=None):
    dataset, featurizer = world
    engine = make_engine(dataset, featurizer)
    service = ResilientSearchService(
        engine, service_config or ServiceConfig(deadline=2.0),
        ingest_log=ingest_log)
    gateway = Gateway(service, gateway_config or GatewayConfig(),
                      clock=clock)
    gateway.start()
    try:
        yield service, gateway
    finally:
        gateway.drain(reason="test-teardown")


def request(port, method, path, body=None, headers=None):
    """One client request; returns ``(status, headers, parsed_body)``."""
    conn = http.client.HTTPConnection(HOST, port, timeout=10.0)
    try:
        raw = None
        base = {"Connection": "close"}
        if body is not None:
            raw = json.dumps(body).encode("utf-8")
            base["Content-Type"] = "application/json"
        base.update(headers or {})
        conn.request(method, path, body=raw, headers=base)
        reply = conn.getresponse()
        data = reply.read()
        try:
            parsed = json.loads(data)
        except ValueError:
            parsed = data.decode("utf-8", "replace")
        return reply.status, dict(reply.getheaders()), parsed
    finally:
        conn.close()


def search(port, ingredients, headers=None, k=3):
    return request(port, "POST", "/search",
                   body={"ingredients": ingredients, "k": k},
                   headers=headers)


# ----------------------------------------------------------------------
# Routing, auth, headers
# ----------------------------------------------------------------------
class TestRouting:
    def test_health_metrics_stats(self, world):
        with running_gateway(world) as (service, gateway):
            port = gateway.port
            assert request(port, "GET", "/healthz")[0] == 200
            status, _, body = request(port, "GET", "/readyz")
            assert status == 200 and body["ready"] is True
            status, headers, text = request(port, "GET", "/metrics")
            assert status == 200
            assert "gateway_requests_total" in text
            assert headers["Content-Type"].startswith("text/plain")
            status, _, stats = request(port, "GET", "/stats")
            assert status == 200
            assert stats["gateway"]["ready"] is True
            assert request(port, "GET", "/nope")[0] == 404
            assert request(port, "GET", "/search")[0] == 405

    def test_search_end_to_end_with_cache(self, world):
        with running_gateway(world) as (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            status, headers, body = search(port, ingredients)
            assert status == 200, body
            assert body["cache"] == "miss" and body["stale"] is False
            assert headers["X-Cache"] == "miss"
            assert body["results"]
            assert body["outcome"]["status"] == "ok"
            # Different key order + extra whitespace: same fingerprint.
            status, headers, body2 = request(
                port, "POST", "/search",
                body={"k": 3, "ingredients": [
                    "  ".join(i.split()) for i in ingredients]})
            assert status == 200
            assert body2["cache"] == "hit"
            assert headers["X-Cache"] == "hit"
            assert body2["results"] == body["results"]
            # Cache-Control: no-cache bypasses the cache entirely.
            status, _, body3 = search(port, ingredients,
                                      headers={"Cache-Control":
                                               "no-cache"})
            assert status == 200 and body3["cache"] == "miss"

    def test_api_key_auth(self, world):
        config = GatewayConfig(api_keys={"sk-alice": "alice"})
        with running_gateway(world, gateway_config=config) as \
                (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            status, _, body = search(port, ingredients)
            assert status == 401 and body["error"] == "missing_api_key"
            status, _, body = search(port, ingredients,
                                     headers={"X-Api-Key": "sk-mallory"})
            assert status == 401 and body["error"] == "unknown_api_key"
            status, _, body = search(port, ingredients,
                                     headers={"X-Api-Key": "sk-alice"})
            assert status == 200
            assert body["outcome"]["tenant"] == "alice"

    def test_deadline_and_criticality_headers(self, world):
        config = GatewayConfig(max_deadline_ms=1000.0)
        with running_gateway(world, gateway_config=config) as \
                (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            status, _, body = search(port, ingredients,
                                     headers={"X-Deadline-Ms": "soonish"})
            assert status == 400 and body["error"] == "bad_deadline"
            status, _, body = search(port, ingredients,
                                     headers={"X-Criticality": "vital"})
            assert status == 400 and body["error"] == "bad_criticality"
            status, _, body = search(
                port, ingredients,
                headers={"X-Deadline-Ms": "800",
                         "X-Criticality": "background",
                         "Cache-Control": "no-cache"})
            assert status == 200
            assert body["outcome"]["deadline_source"] == "header"

    def test_ingest_and_delete_roundtrip(self, world, tmp_path):
        from repro.serving import recipe_to_payload
        dataset, _ = world
        with running_gateway(world, ingest_log=tmp_path / "wal") as \
                (service, gateway):
            port = gateway.port
            payload = recipe_to_payload(list(dataset.split("train"))[0])
            status, _, body = request(port, "POST", "/ingest",
                                      body={"recipe": payload})
            assert status == 200, body
            assert body["status"] == "ok" and body["durable"] is True
            item_id = body["item_id"]
            status, _, body = request(port, "DELETE",
                                      f"/items/{item_id}")
            assert status == 200 and body["status"] == "ok"
            status, _, body = request(port, "POST", "/delete",
                                      body={"item_id": "x"})
            assert status == 400


# ----------------------------------------------------------------------
# Wire armor
# ----------------------------------------------------------------------
class TestWireArmor:
    def test_malformed_request_line_is_structured_400(self, world):
        with running_gateway(world) as (_, gateway):
            with socket.create_connection((HOST, gateway.port),
                                          timeout=5.0) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                raw = read_response(sock)
            assert raw.startswith(b"HTTP/1.1 400")
            assert b"bad_request_line" in raw

    def test_oversize_header_431(self, world):
        config = GatewayConfig(max_header_bytes=512)
        with running_gateway(world, gateway_config=config) as \
                (_, gateway):
            with socket.create_connection((HOST, gateway.port),
                                          timeout=5.0) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\nX-Pad: " +
                             b"a" * 2048 + b"\r\n\r\n")
                raw = read_response(sock)
            assert raw.startswith(b"HTTP/1.1 431")

    def test_oversize_body_413(self, world):
        config = GatewayConfig(max_body_bytes=128)
        with running_gateway(world, gateway_config=config) as \
                (_, gateway):
            status, _, body = request(
                gateway.port, "POST", "/search",
                body={"ingredients": ["x" * 400]})
            assert status == 413 and body["error"] == "oversize_body"

    def test_truncated_body_structured_400(self, world):
        config = GatewayConfig(body_deadline_s=1.0,
                               reaper_interval_s=0.1)
        with running_gateway(world, gateway_config=config) as \
                (_, gateway):
            result = TruncatedBody(HOST, gateway.port).run()
            assert result["status"] == 400
            # The gateway answered promptly instead of waiting out the
            # advertised-but-absent bytes.
            assert result["elapsed_s"] < 5.0
            # ... and stays healthy for the next caller.
            assert request(gateway.port, "GET", "/healthz")[0] == 200

    def test_slowloris_evicted_without_hurting_healthy_tenants(
            self, world):
        config = GatewayConfig(header_deadline_s=0.5,
                               reaper_interval_s=0.1)
        with running_gateway(world, gateway_config=config) as \
                (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            slow = SlowClient(HOST, port, byte_interval_s=0.1,
                              max_duration_s=10.0)
            holder = {}
            attacker = threading.Thread(
                target=lambda: holder.update(result=slow.run()))
            attacker.start()
            latencies, statuses = [], []
            while attacker.is_alive():
                started = time.monotonic()
                status, _, _ = search(port, ingredients,
                                      headers={"Cache-Control":
                                               "no-cache"})
                latencies.append(time.monotonic() - started)
                statuses.append(status)
            attacker.join()
            result = holder["result"]
            assert result["evicted"], result
            # Evicted within the reaper window (deadline + interval +
            # slack), nowhere near the full drip duration.
            assert result["elapsed_s"] < 2.0, result
            assert statuses and all(s == 200 for s in statuses)
            # Healthy requests never waited behind the attacker.
            assert max(latencies) < 1.0, latencies

    def test_connection_flood_is_shed_at_accept(self, world):
        config = GatewayConfig(max_connections=4, idle_timeout_s=10.0)
        with running_gateway(world, gateway_config=config) as \
                (_, gateway):
            flood = ConnectionFlood(HOST, gateway.port, connections=16,
                                    hold_s=1.0)
            result = flood.run()
            assert result["shed"] >= 1, result
            assert result["held_open"] <= 4, result
            # Slots free up once the flood lets go.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    status, _, _ = request(gateway.port, "GET",
                                           "/healthz")
                    if status == 200:
                        break
                except OSError:
                    time.sleep(0.05)
            else:
                pytest.fail("gateway never recovered from the flood")

    def test_disconnect_mid_response_is_contained(self, world):
        with running_gateway(world) as (service, gateway):
            port = gateway.port
            for _ in range(3):
                DisconnectMidResponse(
                    HOST, port, read_bytes=8,
                    body=json.dumps({"ingredients": known_ingredients(
                        service.engine), "k": 3}).encode()).run()
            # The rude clients cost the gateway nothing visible.
            status, _, body = search(port,
                                     known_ingredients(service.engine))
            assert status == 200 and body["results"]
            deadline = time.monotonic() + 5.0
            while gateway.describe()["inflight_requests"] > 0:
                assert time.monotonic() < deadline, \
                    "requests leaked after rude disconnects"
                time.sleep(0.05)


# ----------------------------------------------------------------------
# Swap-aware cache on the wire
# ----------------------------------------------------------------------
class TestCacheOnTheWire:
    def test_hot_swap_invalidates_cache(self, world):
        dataset, featurizer = world
        with running_gateway(world) as (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            assert search(port, ingredients)[2]["cache"] == "miss"
            assert search(port, ingredients)[2]["cache"] == "hit"
            report = service.swap_corpus(
                featurizer.encode_split(dataset, "val"))
            assert report.ok
            status, _, body = search(port, ingredients)
            assert status == 200
            # No stale-generation answer: the entry stored under
            # generation 0 is not served as fresh after the swap.
            assert body["cache"] == "miss"
            assert body["stale"] is False
            assert body["generation"] == 1

    def test_stale_while_revalidate_only_under_degradation(self, world):
        clock = FakeClock()
        config = GatewayConfig(cache=CacheConfig(
            capacity=8, ttl_s=10.0, stale_ttl_s=120.0))
        service_config = ServiceConfig(deadline=2.0,
                                       degraded_enabled=False,
                                       breaker_failure_threshold=2)
        with running_gateway(world, service_config=service_config,
                             gateway_config=config, clock=clock) as \
                (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            fresh = search(port, ingredients)[2]
            assert fresh["cache"] == "miss"
            clock.now += 60.0  # expire the entry (gateway cache clock)
            # Healthy backend + expired entry → recomputed, NOT stale.
            body = search(port, ingredients)[2]
            assert body["cache"] == "miss" and body["stale"] is False
            clock.now += 60.0  # expire the refreshed entry again
            # Now the embed dependency goes down hard; with the
            # degraded ranker disabled the live path fails outright.
            for _ in range(2):
                service.embed_breaker.record_failure()
            status, headers, body = search(port, ingredients)
            assert status == 200, body
            assert body["stale"] is True and body["cache"] == "stale"
            assert body["stale_reason"] == "error"
            assert headers["X-Cache"] == "stale"
            assert "stale" in headers.get("Warning", "")
            assert body["results"] == fresh["results"]

    def test_rate_limited_tenant_gets_429_not_stale(self, world):
        service_config = ServiceConfig(
            deadline=2.0,
            admission=AdmissionConfig(tenants=(
                TenantPolicy(name="busy", rate=0.001, burst=1.0),)))
        with running_gateway(world,
                             service_config=service_config) as \
                (service, gateway):
            port = gateway.port
            ingredients = known_ingredients(service.engine)
            headers = {"X-Tenant": "busy"}
            assert search(port, ingredients, headers=headers)[0] == 200
            status, reply_headers, body = request(
                port, "POST", "/search",
                body={"ingredients": ingredients, "k": 4},
                headers=headers)
            assert status == 429, body
            assert body["outcome"]["shed_reason"] == "rate_limit"
            assert "Retry-After" in reply_headers
            # A tenant over its own budget is not a degraded backend:
            # no stale serving happened.
            assert "stale" not in body


# ----------------------------------------------------------------------
# Graceful drain under load
# ----------------------------------------------------------------------
def _raw_search(port, payload: bytes):
    """One Connection: close request, judged for completeness.

    Returns ``(kind, status)`` where kind is ``complete`` (full
    response, body length matches Content-Length), ``refused``
    (nothing accepted — fine during drain), or ``broken`` (accepted
    but reset/truncated — the drain contract violation).
    """
    try:
        sock = socket.create_connection((HOST, port), timeout=10.0)
    except OSError:
        return "refused", None
    try:
        head = (f"POST /search HTTP/1.1\r\nHost: {HOST}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        try:
            sock.sendall(head + payload)
        except OSError:
            return "refused", None  # reset before the request landed
        raw = read_response(sock, timeout_s=10.0)
    finally:
        sock.close()
    if not raw:
        return "refused", None  # closed before any response byte
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep or not head.startswith(b"HTTP/1.1 "):
        return "broken", None
    status = int(head.split()[1])
    length = None
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    if length is None or len(body) != length:
        return "broken", status
    return "complete", status


class TestGracefulDrain:
    def test_sigterm_under_load_completes_or_503s(self, world):
        config = GatewayConfig(max_connections=128,
                               drain_deadline_s=5.0,
                               read_timeout_s=2.0)
        with running_gateway(world, gateway_config=config) as \
                (service, gateway):
            port = gateway.port
            payload = json.dumps({"ingredients": known_ingredients(
                service.engine), "k": 3}).encode()
            results = []
            lock = threading.Lock()
            stop = threading.Event()

            def client():
                while not stop.is_set():
                    outcome = _raw_search(port, payload)
                    with lock:
                        results.append(outcome)
                    if outcome[0] == "refused":
                        return  # listener is gone; drain is underway

            clients = [threading.Thread(target=client)
                       for _ in range(8)]
            for thread in clients:
                thread.start()
            time.sleep(0.4)  # let load build
            gateway.install_signal_handlers()
            try:
                os.kill(os.getpid(), signal.SIGTERM)
                assert gateway.wait_drained(timeout=15.0)
            finally:
                stop.set()
                gateway.restore_signal_handlers()
            for thread in clients:
                thread.join(timeout=5.0)
            kinds = [kind for kind, _ in results]
            statuses = [status for kind, status in results
                        if kind == "complete"]
            assert "broken" not in kinds, results
            assert statuses.count(200) > 0, results
            assert set(statuses) <= {200, 503}, results
            assert gateway.describe()["drain_reason"] == "SIGTERM"

    def test_drain_is_idempotent_and_flips_readiness(self, world):
        with running_gateway(world) as (service, gateway):
            port = gateway.port
            assert request(port, "GET", "/readyz")[0] == 200
            winners = []
            threads = [threading.Thread(
                target=lambda: winners.append(
                    gateway.drain(reason="race")))
                for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert winners.count(True) == 1
            assert gateway.describe()["draining"] is True
            with pytest.raises(Exception):
                request(port, "GET", "/healthz")

    def test_acked_ingests_survive_drain_and_restart(self, world,
                                                     tmp_path):
        from repro.serving import recipe_to_payload
        dataset, featurizer = world
        log_dir = tmp_path / "wal"
        acked = []
        with running_gateway(world, ingest_log=log_dir) as \
                (service, gateway):
            port = gateway.port
            for recipe in list(dataset.split("train"))[:5]:
                status, _, body = request(
                    port, "POST", "/ingest",
                    body={"recipe": recipe_to_payload(recipe)})
                assert status == 200 and body["durable"] is True
                acked.append(body["item_id"])
            gateway.drain(reason="restart")
        # Crash-only restart: a fresh service over the same WAL must
        # see every acknowledged write.
        engine = make_engine(dataset, featurizer)
        revived = ResilientSearchService(
            engine, ServiceConfig(deadline=2.0), ingest_log=log_dir)
        assert revived.ingestor.recovery["replayed_records"] >= len(acked)
        for item_id in acked:
            assert item_id in revived.ingestor.payloads


# ----------------------------------------------------------------------
# loadgen over HTTP
# ----------------------------------------------------------------------
class TestHttpLoadgen:
    def test_loadgen_drives_the_socket_path(self, world):
        with running_gateway(world) as (service, gateway):
            requester = HttpRequester(
                gateway.url + "/search",
                payload={"ingredients": known_ingredients(
                    service.engine), "k": 3})
            report = LoadGenerator(
                requester,
                [TenantLoad("alice", 20.0),
                 TenantLoad("bob", 10.0, criticality="background")],
                duration_s=0.5).run()
            assert report.offered > 0
            assert report.good > 0
            assert set(report.tenants) == {"alice", "bob"}
            # The wire path reports per-tenant goodput identically to
            # the in-process path.
            assert report.tenants["alice"].good > 0
            assert report.tenants["alice"].p95_ms() >= 0.0

    def test_http_requester_counts_refused_as_shed(self, world):
        with running_gateway(world) as (service, gateway):
            port = gateway.port
            gateway.drain(reason="test")
        requester = HttpRequester(f"http://{HOST}:{port}/search")
        response = requester("alice", "user")
        assert response.outcome.status == "shed"
        assert response.outcome.shed_reason == "at_accept"
