"""Unit tests for the hierarchical semantic loss extension."""

import numpy as np
import pytest

from repro.autograd import Tensor, l2_normalize
from repro.core import (Trainer, TrainingConfig, build_scenario,
                        hierarchical_semantic_loss, map_to_group_labels,
                        scenario_spec)
from repro.data import (ClassTaxonomy, DatasetConfig, IngredientLexicon,
                        RecipeFeaturizer, generate_dataset)


def embeddings(n, d, seed):
    rng = np.random.default_rng(seed)
    return l2_normalize(Tensor(rng.normal(size=(n, d)), requires_grad=True))


class TestGroupMapping:
    def test_preserves_unlabeled(self):
        mapping = np.array([0, 0, 1])
        labels = np.array([2, -1, 0])
        np.testing.assert_array_equal(
            map_to_group_labels(labels, mapping), [1, -1, 0])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            map_to_group_labels(np.array([5]), np.array([0, 1]))

    def test_taxonomy_mapping_consistent(self):
        taxonomy = ClassTaxonomy(16, IngredientLexicon())
        mapping = taxonomy.class_to_group_ids()
        assert len(mapping) == 16
        names = taxonomy.group_names
        for cls in taxonomy.classes:
            assert names[mapping[cls.class_id]] == cls.group

    def test_curated_groups(self):
        taxonomy = ClassTaxonomy(16, IngredientLexicon())
        assert taxonomy["cupcake"].group == "dessert"
        assert taxonomy["pizza"].group == "main"
        assert taxonomy["green beans"].group == "side"


class TestHierarchicalLoss:
    def test_combines_both_levels(self):
        # classes 0,1 -> group 0; classes 2,3 -> group 1
        mapping = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        img = embeddings(8, 6, 0)
        rec = embeddings(8, 6, 1)
        out = hierarchical_semantic_loss(img, rec, labels, mapping)
        assert out.fine.num_triplets > 0
        assert out.coarse.num_triplets > 0
        assert out.loss.item() >= 0

    def test_coarse_level_sees_merged_classes(self):
        # With two classes in ONE group, the coarse level has a single
        # label -> no coarse triplets; the fine level still has some.
        mapping = np.array([0, 0])
        labels = np.array([0, 0, 1, 1])
        out = hierarchical_semantic_loss(embeddings(4, 4, 2),
                                         embeddings(4, 4, 3),
                                         labels, mapping)
        assert out.fine.num_triplets > 0
        assert out.coarse.num_triplets == 0

    def test_zero_group_weight_matches_flat(self):
        mapping = np.array([0, 1, 0, 1])
        labels = np.array([0, 1, 2, 3, 0, 1, 2, 3])
        img, rec = embeddings(8, 5, 4), embeddings(8, 5, 5)
        from repro.core import semantic_triplet_loss
        flat = semantic_triplet_loss(img, rec, labels,
                                     rng=np.random.default_rng(7))
        hier = hierarchical_semantic_loss(
            img, rec, labels, mapping, group_weight=0.0,
            rng=np.random.default_rng(7))
        assert hier.fine.loss.item() == pytest.approx(flat.loss.item())

    def test_gradients_flow(self):
        mapping = np.array([0, 1])
        labels = np.array([0, 0, 1, 1])
        img = embeddings(4, 4, 6)
        out = hierarchical_semantic_loss(img, embeddings(4, 4, 7),
                                         labels, mapping)
        if out.loss.data > 0:
            out.loss.backward()


class TestHierarchicalScenario:
    def test_spec_registered(self):
        spec = scenario_spec("adamine_hier")
        assert spec.use_hierarchical
        assert spec.use_semantic_loss

    def test_trainer_requires_mapping(self):
        ds = generate_dataset(DatasetConfig(num_pairs=40, num_classes=4,
                                            image_size=12, seed=41))
        feat = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(ds)
        model, config = build_scenario(
            "adamine_hier", feat, 4, 12,
            base_config=TrainingConfig(epochs=1), latent_dim=12)
        with pytest.raises(ValueError):
            Trainer(model, config)

    def test_trains_end_to_end(self):
        ds = generate_dataset(DatasetConfig(num_pairs=80, num_classes=6,
                                            image_size=12, seed=42))
        feat = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(ds)
        train = feat.encode_split(ds, "train")
        model, config = build_scenario(
            "adamine_hier", feat, 6, 12,
            base_config=TrainingConfig(epochs=2, freeze_epochs=0,
                                       batch_size=16, augment=False,
                                       select_best=False),
            latent_dim=16)
        trainer = Trainer(model, config,
                          class_to_group=ds.taxonomy.class_to_group_ids())
        history = trainer.fit(train)
        assert all(np.isfinite(h.train_loss) for h in history)
