"""Chaos suite: scripted fault schedules against the resilient service.

Run with ``pytest -m chaos`` (or ``make chaos``); excluded from the
default tier-1 run.  Every schedule is deterministic — faults fire at
explicit request ids on a fake clock — so a failing scenario replays
exactly.

The acceptance scenarios from the issue:

(a) a request completes in *degraded* mode while the embed breaker is
    open and recovers after half-open probes succeed;
(b) an index hot-swap under concurrent queries never returns
    mixed-generation results, and rolls back on canary failure;
(c) every shed / timed-out request yields a structured outcome
    record, never an unhandled exception.
"""

import random
import threading
import time

import numpy as np
import pytest

from repro.robustness import (ChainedServingFaults, IndexCorruptionFault,
                              NaNEmbedFault, SlowEmbedFault,
                              SwapMidQueryFault)
from repro.serving import (CircuitState, ResilientSearchService,
                           RetryPolicy, ServiceConfig)

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def world():
    return make_world()


def fresh_engine(world):
    dataset, featurizer = world
    return make_engine(dataset, featurizer)


def make_service(engine, faults=None, clock=None, **overrides):
    clock = clock or FakeClock()
    defaults = dict(
        deadline=1.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        breaker_failure_threshold=3,
        breaker_reset_after=5.0,
        breaker_half_open_successes=2,
    )
    defaults.update(overrides)
    config = ServiceConfig(**defaults)
    service = ResilientSearchService(engine, config, clock=clock,
                                     sleep=clock.sleep,
                                     rng=random.Random(0), faults=faults)
    return service, clock


def assert_results_belong_to_generation(response, corpora, dataset):
    """No mixed generations: every result row resolves to the recipe
    that generation's corpus maps it to."""
    corpus = corpora[response.generation]
    for result in response.results:
        assert result.corpus_row < len(corpus)
        recipe_index = int(corpus.recipe_indices[result.corpus_row])
        assert dataset[recipe_index].recipe_id == result.recipe.recipe_id


# ----------------------------------------------------------------------
# (a) embed breaker: degrade while open, recover through half-open
# ----------------------------------------------------------------------
class TestEmbedBreakerLifecycle:
    def test_degrades_recovers_via_half_open(self, world):
        engine = fresh_engine(world)
        fault = NaNEmbedFault(requests=[0])
        service, clock = make_service(engine, faults=fault)
        ingredients = known_ingredients(engine)

        # Request 0: three NaN attempts trip the breaker, then the
        # request is still answered — degraded, from lexical overlap.
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.outcome.status == "degraded"
        assert response.degraded and response.ok
        assert response.outcome.attempts == 3
        assert response.results  # an answer, not an apology
        assert "retries exhausted" in response.outcome.error
        assert service.embed_breaker.state is CircuitState.OPEN

        # Request 1 arrives while open: no model attempts at all.
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.outcome.status == "degraded"
        assert response.outcome.attempts == 0
        assert "circuit open" in response.outcome.error

        # Cool-off passes; the fault is gone; half-open probes succeed.
        clock.sleep(5.0)
        assert service.embed_breaker.state is CircuitState.HALF_OPEN
        probe1 = service.search_by_ingredients(ingredients, k=3)
        assert probe1.outcome.status == "ok"
        probe2 = service.search_by_ingredients(ingredients, k=3)
        assert probe2.outcome.status == "ok"
        assert service.embed_breaker.state is CircuitState.CLOSED
        assert service.embed_breaker.transitions == [
            CircuitState.OPEN, CircuitState.HALF_OPEN,
            CircuitState.CLOSED]

    def test_degraded_results_are_lexically_relevant(self, world):
        engine = fresh_engine(world)
        fault = NaNEmbedFault(requests=[0])
        service, _ = make_service(engine, faults=fault)
        target = engine.dataset[int(engine.corpus.recipe_indices[0])]
        response = service.search_by_ingredients(
            list(target.ingredients[:3]), k=len(engine))
        assert response.degraded
        top = response.results[0].recipe
        assert ({i.lower() for i in target.ingredients[:3]}
                & {i.lower() for i in top.ingredients})


# ----------------------------------------------------------------------
# (b) hot-swap: no mixed generations, rollback on canary failure
# ----------------------------------------------------------------------
class TestHotSwapUnderFire:
    def test_concurrent_queries_never_mix_generations(self, world):
        dataset, featurizer = world
        engine = fresh_engine(world)
        # real clock: this scenario runs genuinely multi-threaded
        service = ResilientSearchService(engine, ServiceConfig(
            deadline=5.0, max_inflight=64,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                              jitter=0.0)))
        corpora = {0: engine.corpus,
                   1: featurizer.encode_split(dataset, "val")}
        ingredients = known_ingredients(engine)
        responses, errors = [], []
        stop = threading.Event()

        def worker():
            try:
                while not stop.is_set():
                    responses.append(
                        service.search_by_ingredients(ingredients, k=3))
            except Exception as exc:  # the service must never raise
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        report = service.swap_corpus(corpora[1])
        time.sleep(0.05)
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors
        assert report.ok
        assert responses
        for response in responses:
            assert response.ok
            assert_results_belong_to_generation(response, corpora,
                                                dataset)
        # after the swap, new traffic is generation 1
        final = service.search_by_ingredients(ingredients, k=3)
        assert final.generation == 1
        assert_results_belong_to_generation(final, corpora, dataset)

    def test_swap_mid_query_uses_admission_snapshot(self, world):
        dataset, featurizer = world
        engine = fresh_engine(world)
        corpora = {0: engine.corpus,
                   1: featurizer.encode_split(dataset, "val")}
        holder = {}
        fault = SwapMidQueryFault(
            request=1, trigger=lambda: holder["service"].swap_corpus(
                corpora[1]))
        service, _ = make_service(engine, faults=fault)
        holder["service"] = service
        ingredients = known_ingredients(engine)

        before = service.search_by_ingredients(ingredients, k=3)
        victim = service.search_by_ingredients(ingredients, k=3)
        after = service.search_by_ingredients(ingredients, k=3)

        assert fault.fired
        assert before.generation == 0
        # the victim was admitted on generation 0 and must finish there,
        # even though the swap landed between its embed and index stages
        assert victim.generation == 0 and victim.ok
        assert_results_belong_to_generation(victim, corpora, dataset)
        assert after.generation == 1
        assert_results_belong_to_generation(after, corpora, dataset)

    def test_canary_failure_rolls_back_and_service_survives(self, world):
        dataset, featurizer = world
        engine = fresh_engine(world)
        service, _ = make_service(engine)
        poisoned = featurizer.encode_split(dataset, "val")
        poisoned.images[:] = np.nan
        report = service.swap_corpus(poisoned)
        assert not report.ok and report.rolled_back
        assert any("non-finite" in failure for failure in report.failures)
        assert service.generation == 0
        assert service.search_by_ingredients(known_ingredients(engine),
                                             k=3).ok


# ----------------------------------------------------------------------
# (c) shed / timeout / corruption: structured outcomes, no exceptions
# ----------------------------------------------------------------------
class TestStructuredOutcomes:
    def test_slow_embed_blows_deadline_to_timeout(self, world):
        engine = fresh_engine(world)
        clock = FakeClock()
        fault = SlowEmbedFault(requests=[0], delay=2.0, sleep=clock.sleep)
        service, _ = make_service(engine, faults=fault, clock=clock,
                                  deadline=1.0)
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3)
        assert response.outcome.status == "timeout"
        assert response.outcome.stage == "embed"
        assert response.results == ()
        assert response.outcome.latency >= 1.0

    def test_slow_and_nan_embed_degrades_within_deadline(self, world):
        engine = fresh_engine(world)
        clock = FakeClock()
        # attempt 1 burns 0.6s of a 1s budget and returns NaN: the
        # embed slice (50%) is gone, so the service must degrade
        # instead of retrying itself past the deadline.
        fault = ChainedServingFaults([
            SlowEmbedFault(requests=[0], delay=0.6, sleep=clock.sleep),
            NaNEmbedFault(requests=[0]),
        ])
        service, _ = make_service(engine, faults=fault, clock=clock,
                                  deadline=1.0)
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3)
        assert response.outcome.status == "degraded"
        assert response.outcome.attempts == 1
        assert response.results
        assert response.outcome.latency < 1.0

    def test_shed_requests_are_recorded_not_raised(self, world):
        engine = fresh_engine(world)
        service, _ = make_service(engine, max_inflight=0)
        ingredients = known_ingredients(engine)
        for _ in range(5):
            response = service.search_by_ingredients(ingredients, k=3)
            assert response.outcome.status == "shed"
        stats = service.stats()
        assert stats["statuses"] == {"shed": 5}
        assert len(service.outcomes) == 5

    def test_index_corruption_degrades_then_swap_recovers(self, world):
        dataset, featurizer = world
        engine = fresh_engine(world)
        fault = IndexCorruptionFault(requests=[0])
        service, _ = make_service(engine, faults=fault)
        ingredients = known_ingredients(engine)

        # corrupted index → non-finite distances → degraded answer
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.outcome.status == "degraded"
        assert "index" in response.outcome.error
        assert response.results

        # damage is persistent: the breaker opens on follow-up traffic
        service.search_by_ingredients(ingredients, k=3)
        assert service.index_breaker.state is CircuitState.OPEN

        # hot-swap rebuilds the index; breaker resets; service is clean
        report = service.swap_corpus(
            featurizer.encode_split(dataset, "test"))
        assert report.ok
        assert service.index_breaker.state is CircuitState.CLOSED
        recovered = service.search_by_ingredients(ingredients, k=3)
        assert recovered.outcome.status == "ok"
        assert recovered.generation == 1

    def test_scripted_schedule_full_availability(self, world):
        """A mixed fault schedule: every request gets an outcome, and
        only the scripted timeout is allowed to go unanswered."""
        dataset, featurizer = world
        engine = fresh_engine(world)
        clock = FakeClock()
        faults = ChainedServingFaults([
            NaNEmbedFault(requests=[0, 1]),
            SlowEmbedFault(requests=[4], delay=3.0, sleep=clock.sleep),
        ])
        service, _ = make_service(engine, faults=faults, clock=clock,
                                  deadline=1.0, breaker_reset_after=0.5)
        ingredients = known_ingredients(engine)
        responses = []
        for request in range(8):
            clock.sleep(1.0)  # breathing room between requests
            responses.append(
                service.search_by_ingredients(ingredients, k=3))
        statuses = [r.outcome.status for r in responses]
        assert len(service.outcomes) == 8
        assert statuses[4] == "timeout"
        for position, response in enumerate(responses):
            if position == 4:
                continue
            assert response.ok, (position, response.outcome)
        # availability: at most the one scripted timeout failed
        assert statuses.count("timeout") == 1
        assert set(statuses) <= {"ok", "degraded", "timeout"}
