"""Property-based tests of the training objectives (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, l2_normalize
from repro.core import (aggregate_triplets, instance_triplet_loss,
                        pairwise_loss, semantic_triplet_loss)


def embeddings(n, d, seed):
    rng = np.random.default_rng(seed)
    return l2_normalize(Tensor(rng.normal(size=(n, d)), requires_grad=True))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=100))
def test_instance_loss_nonnegative_and_finite(n, seed):
    out = instance_triplet_loss(embeddings(n, 6, seed),
                                embeddings(n, 6, seed + 1))
    assert out.loss.item() >= 0.0
    assert np.isfinite(out.loss.item())
    assert 0 <= out.num_active <= out.num_triplets


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=50))
def test_instance_loss_bounded_by_margin_plus_diameter(n, seed):
    """Each hinge is at most d_pos + margin <= 2 + margin on the sphere."""
    margin = 0.3
    out = instance_triplet_loss(embeddings(n, 5, seed),
                                embeddings(n, 5, seed + 7),
                                margin=margin, strategy="average")
    assert out.loss.item() <= 2.0 + margin


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=50))
def test_semantic_loss_ignores_label_permutation_of_unlabeled(n, seed):
    """Relabeling unlabeled rows as other unlabeled rows changes nothing."""
    rng = np.random.default_rng(seed)
    img = embeddings(n, 5, seed)
    rec = embeddings(n, 5, seed + 1)
    labels = rng.integers(0, 2, size=n)
    labels[: n // 2] = -1
    out1 = semantic_triplet_loss(img, rec, labels,
                                 rng=np.random.default_rng(3))
    out2 = semantic_triplet_loss(img, rec, labels.copy(),
                                 rng=np.random.default_rng(3))
    assert out1.loss.item() == out2.loss.item()
    assert out1.num_triplets == out2.num_triplets


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=50))
def test_pairwise_loss_nonnegative(n, seed):
    loss = pairwise_loss(embeddings(n, 5, seed), embeddings(n, 5, seed + 3))
    assert loss.item() >= 0.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                min_size=1, max_size=30))
def test_adaptive_at_least_average(values):
    """Adaptive normalization never reports a smaller scalar than
    averaging: dividing by the (<= total) active count can only grow."""
    losses = Tensor(np.array(values))
    adaptive = aggregate_triplets(losses, "adaptive").item()
    average = aggregate_triplets(losses, "average").item()
    assert adaptive >= average - 1e-12


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=50))
def test_perfect_alignment_zero_instance_loss(n, seed):
    """If both modalities share identical well-separated embeddings on
    nearly-orthogonal axes, no triplet is violated."""
    base = np.eye(max(n, 2))[:n] * 1.0
    emb = l2_normalize(Tensor(base))
    out = instance_triplet_loss(emb, emb, margin=0.3)
    assert out.loss.item() == 0.0
