"""Cluster chaos suite: scripted shard/replica fault schedules.

Run with ``pytest -m cluster`` (or ``make cluster-chaos``); excluded
from the default tier-1 run alongside the serving chaos suite.

The acceptance scenarios from the issue:

(a) :class:`ReplicaCrash` killing one replica of every shard mid-run
    — every request still answers (ok or partial), failover counters
    increment, and anti-entropy restores the full replica count;
(b) :class:`ShardLoss` of one whole shard — outcomes become
    ``partial`` with the correct ``shards_answered``, never
    exceptions;
(c) hedged requests measurably cut tail latency under an injected
    :class:`SlowShard` straggler (real clock, real sleeps — this is
    the one suite where wall time is the observable).
"""

import time

import numpy as np
import pytest

from repro.retrieval.index import NearestNeighborIndex
from repro.robustness import ReplicaCrash, ShardLoss, SlowShard
from repro.serving import ResilientSearchService, ServiceConfig
from repro.serving.cluster import ClusterConfig, IndexCluster

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)

pytestmark = [pytest.mark.chaos, pytest.mark.cluster]


@pytest.fixture(scope="module")
def world():
    return make_world()


def make_clustered_service(world, cluster_faults=None, shards=3,
                           replicas=2):
    dataset, featurizer = world
    clock = FakeClock()
    service = ResilientSearchService(
        make_engine(dataset, featurizer),
        ServiceConfig(shards=shards, replicas=replicas),
        clock=clock, sleep=clock.sleep, cluster_faults=cluster_faults)
    return service, clock


# ----------------------------------------------------------------------
# (a) replica crashes mid-run: failover, then anti-entropy repair
# ----------------------------------------------------------------------
class TestReplicaCrashMidRun:
    def test_failover_then_heal(self, world):
        # Kill replica 0 of every shard just as the third image-cluster
        # fan-out begins.
        fault = ReplicaCrash({2: [(0, 0), (1, 0), (2, 0)]})
        service, _ = make_clustered_service(world, cluster_faults=fault)
        ingredients = known_ingredients(service._active.engine, 2)

        baseline = service.search_by_ingredients(ingredients, k=5)
        assert baseline.outcome.status == "ok"
        titles = [r.recipe.title for r in baseline.results]

        for _ in range(9):
            response = service.search_by_ingredients(ingredients, k=5)
            # Replication absorbs the crash: never an error, and with
            # a live sibling per shard, never even partial.
            assert response.outcome.status in ("ok", "partial")
            assert response.ok
            assert [r.recipe.title for r in response.results] == titles

        assert fault.fired  # the schedule actually ran
        cluster = service._active.image_cluster
        info = cluster.describe()
        assert info["failovers"] >= 3
        # Auto anti-entropy rebuilt every dead replica from its
        # surviving sibling.
        assert info["rebuilds"] == 3
        assert cluster.live_replica_count() == 6
        # ... and the rebuilt replicas serve identical bits.
        for shard in range(3):
            assert (cluster.replica(shard, 0).index.embeddings.tobytes()
                    == cluster.replica(shard, 1).index.embeddings.tobytes())

    def test_statuses_stay_clean(self, world):
        fault = ReplicaCrash({1: [(0, 0)], 3: [(1, 0)], 5: [(2, 1)]})
        service, _ = make_clustered_service(world, cluster_faults=fault)
        ingredients = known_ingredients(service._active.engine, 2)
        for _ in range(8):
            response = service.search_by_ingredients(ingredients, k=5)
            assert response.ok
        statuses = service.stats()["statuses"]
        assert set(statuses) <= {"ok", "partial"}


# ----------------------------------------------------------------------
# (b) whole-shard loss: partial results, never exceptions
# ----------------------------------------------------------------------
class TestShardLoss:
    def test_partial_with_correct_coverage(self, world):
        fault = ShardLoss(query=1, shard_id=1)
        service, _ = make_clustered_service(world, cluster_faults=fault)
        ingredients = known_ingredients(service._active.engine, 2)

        first = service.search_by_ingredients(ingredients, k=5)
        assert first.outcome.status == "ok"
        assert first.outcome.shards_answered == 3

        for _ in range(6):
            response = service.search_by_ingredients(ingredients, k=5)
            assert response.outcome.status == "partial"
            assert response.ok and not response.degraded
            assert response.outcome.shards_total == 3
            assert response.outcome.shards_answered == 2
            assert response.results  # a partial answer, not an empty one

        # With every replica gone there is no donor: the shard must
        # stay dark rather than resurrect with junk.
        assert service._active.image_cluster.live_replica_count() == 4
        statuses = service.stats()["statuses"]
        assert statuses["partial"] == 6
        assert "error" not in statuses

    def test_slow_shard_beyond_deadline_never_raises(self, world):
        # A shard slower than the whole request budget is dropped by
        # the deadline carve; the request degrades instead of hanging.
        dataset, featurizer = world
        clock = FakeClock()
        fault = SlowShard(queries=range(1, 50), shard_id=0,
                          delay=5.0, sleep=clock.sleep)
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(shards=3, replicas=2,
                          cluster=ClusterConfig(num_shards=3,
                                                replication=2,
                                                parallel=False)),
            clock=clock, sleep=clock.sleep, cluster_faults=fault)
        ingredients = known_ingredients(service._active.engine, 2)
        assert service.search_by_ingredients(ingredients, k=5).ok
        for _ in range(3):
            response = service.search_by_ingredients(ingredients, k=5)
            # The fake-clock stall consumes the whole shared budget, so
            # the fan-out yields nothing and the service falls back.
            assert response.outcome.status in ("degraded", "timeout")


# ----------------------------------------------------------------------
# (c) hedging cuts the tail under a deterministic straggler
# ----------------------------------------------------------------------
class TestHedgingTailLatency:
    WARMUP = 30
    SLOW = 12
    DELAY = 0.08  # seconds of real sleep on the straggler

    def _run(self, hedge_enabled):
        rng = np.random.default_rng(11)
        index = NearestNeighborIndex(rng.normal(size=(80, 12)))
        # Replica 0 of shard 0 becomes a straggler after warmup; its
        # sibling stays fast — the exact scenario hedging targets.
        fault = SlowShard(
            queries=range(self.WARMUP, self.WARMUP + self.SLOW),
            shard_id=0, replica_id=0, delay=self.DELAY,
            sleep=time.sleep)
        cluster = IndexCluster(
            index,
            ClusterConfig(num_shards=2, replication=2,
                          hedge_enabled=hedge_enabled,
                          hedge_quantile=0.5, hedge_factor=2.0,
                          hedge_min_wait=0.002, hedge_warmup=5),
            faults=fault)
        vector = rng.normal(size=12)
        expected_ids, _ = index.query(vector, k=5)
        for _ in range(self.WARMUP):
            cluster.query(vector, k=5)
        latencies = []
        for _ in range(self.SLOW):
            started = time.monotonic()
            result = cluster.query(vector, k=5)
            latencies.append(time.monotonic() - started)
            assert not result.partial
            assert np.array_equal(result.ids, expected_ids)
        return float(np.quantile(latencies, 0.99)), cluster

    def test_hedging_beats_no_hedging_p99(self):
        unhedged_p99, _ = self._run(hedge_enabled=False)
        hedged_p99, cluster = self._run(hedge_enabled=True)
        # Without hedging every straggler query eats the full delay.
        assert unhedged_p99 >= self.DELAY * 0.9
        # With hedging the backup replica answers while the straggler
        # sleeps; generous margin to stay robust on slow CI.
        assert hedged_p99 < self.DELAY * 0.75
        assert cluster.describe()["hedges"] > 0
