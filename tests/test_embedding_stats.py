"""Unit tests for latent-space diagnostics and the figure rasterizer."""

import numpy as np
import pytest

from repro.analysis import (CLASS_PALETTE, LatentSpaceStats, alignment,
                            line_plot, modality_gap, scatter_plot,
                            summarize_latent_space, uniformity)


RNG = lambda seed=0: np.random.default_rng(seed)


class TestAlignment:
    def test_identical_embeddings_align_perfectly(self):
        x = RNG(0).normal(size=(20, 8))
        assert alignment(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_alignment_orders_noise_levels(self):
        x = RNG(1).normal(size=(50, 8))
        small = alignment(x, x + 0.05 * RNG(2).normal(size=x.shape))
        large = alignment(x, x + 0.50 * RNG(3).normal(size=x.shape))
        assert small < large

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            alignment(np.zeros((3, 2)), np.zeros((4, 2)))


class TestUniformity:
    def test_spread_more_uniform_than_collapsed(self):
        spread = RNG(4).normal(size=(60, 16))
        collapsed = np.ones((60, 16)) + 0.01 * RNG(5).normal(size=(60, 16))
        assert uniformity(spread) < uniformity(collapsed)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            uniformity(np.ones((1, 4)))


class TestModalityGap:
    def test_zero_for_identical_modalities(self):
        x = RNG(6).normal(size=(30, 8))
        assert modality_gap(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_detects_shifted_modality(self):
        x = RNG(7).normal(size=(30, 8))
        y = x + np.array([5.0] + [0.0] * 7)
        assert modality_gap(x, y) > 0.1


class TestSummary:
    def test_returns_all_fields(self):
        x = RNG(8).normal(size=(40, 8))
        y = RNG(9).normal(size=(40, 8))
        stats = summarize_latent_space(x, y)
        assert isinstance(stats, LatentSpaceStats)
        assert np.isfinite(stats.alignment)
        assert np.isfinite(stats.uniformity_images)
        assert np.isfinite(stats.modality_gap)


class TestScatterPlot:
    def test_image_shape_and_range(self):
        points = RNG(10).normal(size=(30, 2))
        classes = RNG(11).integers(0, 5, size=30)
        image = scatter_plot(points, classes, size=64)
        assert image.shape == (3, 64, 64)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_dots_are_drawn(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0],
                           [1.0, 0.0], [0.5, 0.5]])
        image = scatter_plot(points, np.zeros(5, dtype=int), size=64)
        assert (image < 1.0).any()  # background is white

    def test_traces_connect_pairs(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.3, 0.8],
                           [0.8, 0.3], [0.5, 0.5]])
        with_traces = scatter_plot(points, np.zeros(5, dtype=int), size=64,
                                   pair_traces=np.array([[0, 1]]))
        without = scatter_plot(points, np.zeros(5, dtype=int), size=64)
        assert (with_traces < 1.0).sum() > (without < 1.0).sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_plot(np.zeros((4, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            scatter_plot(np.zeros((4, 2)), np.zeros(3))

    def test_palette_colors_valid(self):
        assert CLASS_PALETTE.shape[1] == 3
        assert (CLASS_PALETTE >= 0).all() and (CLASS_PALETTE <= 1).all()


class TestLinePlot:
    def test_image_shape(self):
        image = line_plot(np.array([0.1, 0.3, 0.5, 0.9]),
                          np.array([12.0, 13.0, 15.0, 22.0]), size=80)
        assert image.shape == (3, 80, 80)
        assert (image < 1.0).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            line_plot(np.array([1.0, 2.0]), np.array([1.0]))
