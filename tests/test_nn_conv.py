"""Unit tests for convolution and pooling (vs. naive references)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients
from repro.nn.conv import col2im, im2col


RNG = lambda seed=0: np.random.default_rng(seed)


def naive_conv2d(x, w, b, stride, padding):
    """Direct-loop convolution used as the ground-truth reference."""
    n, c, h, wd = x.shape
    o, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (wd + 2 * padding - k) // stride + 1
    out = np.zeros((n, o, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * stride:i * stride + k, j * stride:j * stride + k]
            out[:, :, i, j] = np.einsum("nckl,ockl->no", patch, w)
    if b is not None:
        out += b[None, :, None, None]
    return out


class TestIm2Col:
    def test_roundtrip_shapes(self):
        x = RNG().normal(size=(2, 3, 8, 8))
        cols = im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_col2im_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> (they are transposes)
        x = RNG(1).normal(size=(1, 2, 6, 6))
        y = RNG(2).normal(size=(1, 2 * 9, 36))
        lhs = (im2col(x, 3, 1, 1) * y).sum()
        rhs = (x * col2im(y, x.shape, 3, 1, 1)).sum()
        assert lhs == pytest.approx(rhs)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_naive(self, stride, padding):
        conv = nn.Conv2d(3, 4, 3, RNG(), stride=stride, padding=padding)
        x = RNG(3).normal(size=(2, 3, 8, 8))
        expected = naive_conv2d(x, conv.weight.data, conv.bias.data,
                                stride, padding)
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, atol=1e-10)

    def test_wrong_channels_raises(self):
        conv = nn.Conv2d(3, 4, 3, RNG())
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 2, 8, 8))))

    def test_gradcheck_input(self):
        conv = nn.Conv2d(2, 3, 3, RNG(), padding=1)
        x = Tensor(RNG(4).normal(size=(1, 2, 5, 5)), requires_grad=True)
        check_gradients(lambda x: conv(x), [x], atol=1e-4)

    def test_gradcheck_weight(self):
        conv = nn.Conv2d(1, 2, 3, RNG(), padding=1)
        x = Tensor(RNG(5).normal(size=(1, 1, 4, 4)))
        check_gradients(lambda w: _conv_with_weight(conv, x, w),
                        [conv.weight], atol=1e-4)

    def test_bias_gradient(self):
        conv = nn.Conv2d(1, 2, 3, RNG(), padding=1)
        conv(Tensor(np.ones((1, 1, 4, 4)))).sum().backward()
        np.testing.assert_allclose(conv.bias.grad, [16.0, 16.0])

    def test_no_bias(self):
        conv = nn.Conv2d(1, 2, 3, RNG(), bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1


def _conv_with_weight(conv, x, weight):
    conv.weight = weight
    return conv(x)


class TestPooling:
    def test_maxpool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = nn.MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        nn.MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_maxpool_indivisible_raises(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(3)(Tensor(np.zeros((1, 1, 4, 4))))

    def test_maxpool_gradcheck(self):
        x = Tensor(RNG(6).normal(size=(2, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda x: nn.MaxPool2d(2)(x), [x], atol=1e-4)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4)) * 5.0)
        out = nn.GlobalAvgPool2d()(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, np.full((2, 3), 5.0))

    def test_global_avg_pool_gradcheck(self):
        x = Tensor(RNG(7).normal(size=(1, 2, 3, 3)), requires_grad=True)
        check_gradients(lambda x: nn.GlobalAvgPool2d()(x), [x])
