"""Whole-path tracing tests: cross-thread context propagation,
tail-based sampling, histogram exemplars, and the critical-path
analyzer.

Part of tier-1 (``-m trace`` runs it alone, ``make trace-test``).
Everything here runs on fake clocks and deterministic ids except the
hedge acceptance scenario, which needs real lane threads racing a
real straggler delay — its sleeps are tens of milliseconds.
"""

import json
import random
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (MetricsRegistry, SpanRecord, Telemetry,
                       TraceContext, Tracer, TraceSampler, aggregate,
                       build_traces, critical_path, parse_prometheus,
                       render_tree, self_time, spans_from_jsonl)
from repro.obs.critpath import kept_trace_tree
from repro.obs.flight import FlightRecorder
from repro.robustness import SlowShard
from repro.serving import (AdmissionConfig, ClusterConfig,
                           ResilientSearchService, RetryPolicy,
                           ServiceConfig)
from repro.serving.ingest import IngestConfig

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)

pytestmark = pytest.mark.trace


@pytest.fixture(scope="module")
def world():
    return make_world(num_pairs=60, num_classes=4, seed=3)


def tree_of(tracer, trace_id):
    return build_traces(tracer.records())[trace_id]


# ----------------------------------------------------------------------
# Context propagation across threads
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_capture_without_active_span_is_none_and_attach_noop(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.capture() is None
        with tracer.attach(None):
            with tracer.span("solo") as span:
                pass
        assert span.parent_id is None

    def test_worker_thread_joins_the_trace(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("request") as root:
            ctx = tracer.capture()
            assert ctx == TraceContext(root.trace_id, root.span_id)

            def work():
                with tracer.attach(ctx):
                    with tracer.span("shard_query", shard=1):
                        clock.sleep(0.01)

            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        records = tracer.records()
        child = next(r for r in records if r.name == "shard_query")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_cross_thread_child_lands_in_parent_children(self):
        # The satellite fix: _finish attaches by parent id under the
        # lock, so a span closed on a worker thread still shows up in
        # parent.children (-> RequestOutcome.stage_ms keeps fan-out
        # stages).
        tracer = Tracer(clock=FakeClock())
        with tracer.span("request") as root:
            ctx = tracer.capture()

            def work():
                with tracer.attach(ctx), tracer.span("fan_out"):
                    pass

            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
            assert [c.name for c in root.children] == ["fan_out"]

    def test_reattach_same_context_twice_nests_harmlessly(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            ctx = tracer.capture()
        with tracer.attach(ctx):
            with tracer.attach(ctx):
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("outer_level") as outer:
                pass
        assert inner.parent_id == root.span_id
        assert outer.parent_id == root.span_id
        assert tracer.current() is None

    def test_span_closed_on_a_different_thread(self):
        # Open on the main thread, close on a worker: the record must
        # land with correct ids, and the opener's stack must not keep
        # parenting to the closed span afterwards.
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("handoff")
        span.__enter__()
        worker = threading.Thread(
            target=span.__exit__, args=(None, None, None))
        worker.start()
        worker.join()
        assert tracer.records()[-1].name == "handoff"
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_mis_nested_exits_recover(self):
        tracer = Tracer(clock=FakeClock())
        a = tracer.span("a")
        b = tracer.span("b")  # sibling of a: created before a entered
        a.__enter__()
        b2 = tracer.span("b2")  # child of a
        b2.__enter__()
        a.__exit__(None, None, None)   # out of order
        b2.__exit__(None, None, None)
        b.__enter__()
        b.__exit__(None, None, None)
        names = {r.name: r for r in tracer.records()}
        assert names["b2"].parent_id == a.span_id
        assert names["b2"].trace_id == a.trace_id
        assert tracer.current() is None

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 3)),
                    min_size=1, max_size=8))
    def test_every_parent_id_resolves_within_its_trace(self, plan):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root") as root:
            for cross_thread, fanout in plan:
                with tracer.span("stage"):
                    ctx = tracer.capture()

                    def work():
                        with tracer.attach(ctx):
                            for __ in range(fanout):
                                with tracer.span("child"):
                                    clock.sleep(0.001)

                    if cross_thread:
                        workers = [threading.Thread(target=work)
                                   for __ in range(2)]
                        for w in workers:
                            w.start()
                        for w in workers:
                            w.join()
                    else:
                        work()
        records = tracer.records()
        assert {r.trace_id for r in records} == {root.trace_id}
        by_id = {r.span_id for r in records}
        for record in records:
            assert (record.parent_id is None
                    or record.parent_id in by_id)
        trees = build_traces(records)
        assert list(trees) == [root.trace_id]
        assert trees[root.trace_id].orphans == []
        assert len(trees[root.trace_id].roots) == 1


# ----------------------------------------------------------------------
# export_jsonl dedup (satellite)
# ----------------------------------------------------------------------
class TestExportDedup:
    def test_repeated_exports_do_not_duplicate(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        path = tmp_path / "spans.jsonl"
        for name in ("a", "b"):
            with tracer.span(name):
                pass
        assert tracer.export_jsonl(path) == 2
        assert tracer.export_jsonl(path) == 0
        with tracer.span("c"):
            pass
        assert tracer.export_jsonl(path) == 1
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert [row["name"] for row in rows] == ["a", "b", "c"]
        assert len({row["span_id"] for row in rows}) == 3

    def test_export_survives_ring_buffer_wrap(self, tmp_path):
        tracer = Tracer(clock=FakeClock(), max_spans=4)
        path = tmp_path / "spans.jsonl"
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.export_jsonl(path) == 3
        for i in range(3, 9):  # 6 more; ring holds only the last 4
            with tracer.span(f"s{i}"):
                pass
        assert tracer.export_jsonl(path) == 4
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert len(rows) == 7
        assert len({row["span_id"] for row in rows}) == 7


# ----------------------------------------------------------------------
# Tail-based sampling
# ----------------------------------------------------------------------
def span_record(name, trace_id, span_id, parent_id=None, start=0.0,
                duration=0.01, status="ok", **attributes):
    return SpanRecord(name=name, trace_id=trace_id, span_id=span_id,
                      parent_id=parent_id, start=start,
                      duration=duration, status=status,
                      attributes=attributes)


class TestTailSampler:
    def test_errored_trace_always_kept(self):
        sampler = TraceSampler(fraction=0.0)
        sampler.observe(span_record("embed", 1, 11, parent_id=10,
                                    status="error"))
        sampler.observe(span_record("request", 1, 10))
        kept = sampler.kept()
        assert [t.verdict for t in kept] == ["error"]
        assert {r.span_id for r in kept[0].spans} == {10, 11}

    def test_flagged_outcome_always_kept(self):
        sampler = TraceSampler(fraction=0.0)
        for i, status in enumerate(("shed", "partial", "degraded",
                                    "timeout"), start=1):
            record = span_record("request", i, i * 10)
            record.attributes["status"] = status
            sampler.observe(record)
        assert [t.verdict for t in sampler.kept()] == ["flagged"] * 4

    def test_slow_trace_kept_via_rolling_p99(self):
        sampler = TraceSampler(fraction=0.0, min_history=10)
        for i in range(1, 12):
            sampler.observe(span_record("request", i, i * 10,
                                        duration=0.01))
        assert sampler.kept() == []   # constant durations: never slow
        sampler.observe(span_record("request", 99, 990, duration=1.0))
        assert [t.verdict for t in sampler.kept()] == ["slow"]
        assert sampler.kept()[0].trace_id == 99

    def test_healthy_retention_matches_fraction(self):
        registry = MetricsRegistry()
        sampler = TraceSampler(fraction=0.25, registry=registry,
                               seed=7)
        n = 600
        for i in range(1, n + 1):
            sampler.observe(span_record("request", i, i * 10,
                                        duration=0.01))
        counter = registry.get("traces_sampled_total")
        sampled = counter.labels(verdict="sampled").value
        dropped = counter.labels(verdict="dropped").value
        assert sampled + dropped == n
        assert sampled / n == pytest.approx(0.25, abs=0.08)
        assert len(sampler.kept()) <= 64

    def test_pending_memory_is_bounded(self):
        registry = MetricsRegistry()
        sampler = TraceSampler(fraction=1.0, max_pending=4,
                               registry=registry)
        for i in range(1, 11):   # ten traces whose roots never close
            sampler.observe(span_record("embed", i, i * 10 + 1,
                                        parent_id=i * 10))
        assert sampler.pending_traces() <= 4
        counter = registry.get("traces_sampled_total")
        assert counter.labels(verdict="evicted").value == 6

    def test_late_span_joins_its_kept_trace(self):
        # A losing hedge lane closes after the request: the span must
        # ride the already-made verdict, not open a new pending trace.
        sampler = TraceSampler(fraction=1.0)
        sampler.observe(span_record("request", 5, 50))
        sampler.observe(span_record("hedge", 5, 51, parent_id=50))
        kept = sampler.get(5)
        assert kept is not None
        assert {r.name for r in kept.spans} == {"request", "hedge"}
        assert sampler.pending_traces() == 0


# ----------------------------------------------------------------------
# Histogram exemplars (+ parse_prometheus round trip, satellite)
# ----------------------------------------------------------------------
class TestExemplars:
    def test_one_exemplar_per_bucket_latest_wins(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05, trace_id=1)
        histogram.observe(0.07, trace_id=2)
        histogram.observe(0.5, trace_id=3)
        histogram.observe(5.0)           # no trace: no exemplar
        assert histogram._default().exemplars() == {
            0: (0.07, "2"), 1: (0.5, "3")}

    def test_prometheus_exposition_and_parse_round_trip(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "stage_seconds", labels=("stage",), buckets=(0.1, 1.0))
        histogram.labels(stage="embed").observe(0.5, trace_id=42)
        text = registry.to_prometheus()
        assert '# {trace_id="42"} 0.5' in text
        parsed = parse_prometheus(text)
        key = (("le", "1"), ("stage", "embed"))
        assert parsed["stage_seconds_bucket"][key] == 1.0
        exemplar = parsed.exemplars[("stage_seconds_bucket", key)]
        assert exemplar == {"labels": {"trace_id": "42"},
                            "value": 0.5}
        # untouched series parse exactly as before
        assert parsed["stage_seconds_count"][
            (("stage", "embed"),)] == 1.0

    def test_json_round_trip_preserves_exemplars(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(0.1, 1.0)).observe(
            0.5, trace_id=7)
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.get("h")._default().exemplars() == {1: (0.5, "7")}
        # and a second snapshot of the clone carries them forward
        assert clone.to_dict()["h"]["samples"][0]["exemplars"] == {
            "1": {"value": 0.5, "trace_id": "7"}}

    def test_parse_without_exemplars_is_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["c_total"][()] == 3.0
        assert parsed.exemplars == {}


# ----------------------------------------------------------------------
# Critical-path analyzer
# ----------------------------------------------------------------------
class TestCritPath:
    def make_fanout_trace(self):
        # request [0, 1.0] -> index [0.1, 0.9] -> two shards where
        # shard 0 is the straggler, plus a quick materialize.
        return [
            span_record("request", 1, 1, start=0.0, duration=1.0),
            span_record("index", 1, 2, parent_id=1, start=0.1,
                        duration=0.8),
            span_record("shard_query", 1, 3, parent_id=2, start=0.12,
                        duration=0.7, shard=0),
            span_record("shard_query", 1, 4, parent_id=2, start=0.12,
                        duration=0.1, shard=1),
            span_record("materialize", 1, 5, parent_id=1, start=0.9,
                        duration=0.08),
        ]

    def test_build_traces_flags_orphans(self):
        records = self.make_fanout_trace()
        records.append(span_record("lost", 1, 9, parent_id=777))
        tree = build_traces(records)[1]
        assert [r.name for r in tree.orphans] == ["lost"]
        assert len(tree.roots) == 1
        assert len(tree.spans()) == 5

    def test_self_time_excludes_child_overlap(self):
        tree = build_traces(self.make_fanout_trace())[1]
        index = next(n for n in tree.root.walk() if n.name == "index")
        # index [0.1, 0.9], children cover [0.12, 0.82] -> 0.1 self
        assert self_time(index) == pytest.approx(0.1)
        shard = next(n for n in tree.root.walk()
                     if n.record.attributes.get("shard") == 0)
        assert self_time(shard) == pytest.approx(0.7)

    def test_critical_path_picks_the_straggler(self):
        tree = build_traces(self.make_fanout_trace())[1]
        segments = critical_path(tree.root)
        attributed = {}
        for node, seconds in segments:
            key = (node.name, node.record.attributes.get("shard"))
            attributed[key] = attributed.get(key, 0.0) + seconds
        # the fast shard never appears on the blocking path
        assert ("shard_query", 1) not in attributed
        assert attributed[("shard_query", 0)] == pytest.approx(0.7)
        total = sum(seconds for __, seconds in segments)
        assert total == pytest.approx(tree.root.duration)

    def test_aggregate_breakdown_and_focus(self):
        records = self.make_fanout_trace()
        trees = build_traces(records)
        breakdown = aggregate(trees)
        assert breakdown["traces"] == 1
        assert breakdown["total_s"] == pytest.approx(1.0)
        names = list(breakdown["by_name"])
        assert names[0] == "shard_query"     # dominant, sorted first
        shares = sum(entry["share"]
                     for entry in breakdown["by_name"].values())
        assert shares == pytest.approx(1.0)
        focused = aggregate(trees, focus_quantile=0.99)
        assert focused["traces"] == 1

    def test_render_tree_marks_critical_path(self):
        tree = build_traces(self.make_fanout_trace())[1]
        art = render_tree(tree, critical=True)
        lines = art.splitlines()
        assert lines[0] == "trace 1"
        assert any("└──" in line or "├──" in line for line in lines)
        straggler = next(line for line in lines
                         if "shard=0" in line)
        assert straggler.lstrip("│ ├└─").startswith("*")
        fast = next(line for line in lines if "shard=1" in line)
        assert "*" not in fast


# ----------------------------------------------------------------------
# Whole-path integration through the service (fake clock)
# ----------------------------------------------------------------------
def make_service(world, *, faults=None, clock=None, **overrides):
    dataset, featurizer = world
    engine = make_engine(dataset, featurizer)
    clock = clock or FakeClock()
    defaults = dict(
        deadline=10.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
        admission=AdmissionConfig(),
    )
    defaults.update(overrides)
    service = ResilientSearchService(
        engine, ServiceConfig(**defaults), clock=clock,
        sleep=clock.sleep, rng=random.Random(0), cluster_faults=faults)
    return service, clock


class TestServiceWholePath:
    def test_sharded_request_is_one_tree_with_queue_wait(self, world):
        service, __ = make_service(
            world, shards=2, replicas=1,
            cluster=ClusterConfig(num_shards=2, replication=1))
        ingredients = known_ingredients(service._active.engine, 2)
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.ok
        tracer = service.telemetry.tracer
        roots = [r for r in tracer.records()
                 if r.name == "request" and r.parent_id is None]
        tree = tree_of(tracer, roots[-1].trace_id)
        assert tree.orphans == []
        assert len(tree.roots) == 1
        stages = {c.name: c for c in tree.root.children}
        assert {"admit", "embed", "index",
                "materialize"} <= set(stages)
        # the fair-queue wait is an explicit child of admit
        admit_children = [c.name for c in stages["admit"].children]
        assert admit_children == ["queue_wait"]
        queue_wait = stages["admit"].children[0]
        assert queue_wait.record.attributes["tenant"] == "default"
        assert queue_wait.record.attributes["outcome"] == "granted"
        shard_ids = sorted(
            c.record.attributes["shard"]
            for c in stages["index"].children
            if c.name == "shard_query")
        assert shard_ids == [0, 1]

    def test_stage_ms_still_covers_fanout_request(self, world):
        service, __ = make_service(
            world, shards=2, replicas=1,
            cluster=ClusterConfig(num_shards=2, replication=1))
        ingredients = known_ingredients(service._active.engine, 2)
        outcome = service.search_by_ingredients(ingredients, k=3).outcome
        assert {"admit", "embed", "index",
                "materialize"} <= set(outcome.stage_ms)

    def test_critpath_blames_the_slow_shard(self, world):
        clock = FakeClock()
        fault = SlowShard(queries=range(0, 1_000_000), shard_id=0,
                          delay=0.5, sleep=clock.sleep)
        service, __ = make_service(
            world, clock=clock, faults=fault, shards=2, replicas=1,
            cluster=ClusterConfig(num_shards=2, replication=1,
                                  parallel=False))
        ingredients = known_ingredients(service._active.engine, 2)
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.ok
        tracer = service.telemetry.tracer
        root_record = [r for r in tracer.records()
                       if r.name == "request"][-1]
        tree = tree_of(tracer, root_record.trace_id)
        assert tree.orphans == []
        attributed = {}
        for node, seconds in critical_path(tree.root):
            attributed[node] = attributed.get(node, 0.0) + seconds
        dominant = max(attributed, key=attributed.get)
        assert dominant.name == "shard_query"
        assert dominant.record.attributes["shard"] == 0
        assert attributed[dominant] >= 0.5

    def test_request_latency_histogram_carries_trace_exemplar(
            self, world):
        service, __ = make_service(world)
        ingredients = known_ingredients(service._active.engine, 2)
        assert service.search_by_ingredients(ingredients, k=3).ok
        tracer = service.telemetry.tracer
        trace_id = [r for r in tracer.records()
                    if r.name == "request"][-1].trace_id
        family = service.telemetry.registry.get(
            "serving_request_seconds")
        exemplars = family._default().exemplars()
        assert str(trace_id) in {t for __, t in exemplars.values()}

    def test_compaction_trace_links_to_triggering_ingest(
            self, world, tmp_path):
        dataset, featurizer = world
        clock = FakeClock()
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(deadline=10.0),
            clock=clock, sleep=clock.sleep,
            ingest_log=tmp_path / "wal",
            ingest_config=IngestConfig(fsync_every=1))
        recipe = list(dataset.split("train"))[0]
        assert service.ingest(recipe).status == "ok"
        report = service.compact_ingest()
        assert report.ok
        tracer = service.telemetry.tracer
        ingest = [r for r in tracer.records()
                  if r.name == "ingest"][-1]
        compaction = [r for r in tracer.records()
                      if r.name == "compaction"][-1]
        assert compaction.trace_id == ingest.trace_id
        assert compaction.parent_id == ingest.span_id


# ----------------------------------------------------------------------
# Acceptance: hedged fan-out is ONE trace including the hedge lane
# (real clock: lanes race a real straggler delay)
# ----------------------------------------------------------------------
class _FireAlways:
    def __contains__(self, query_id) -> bool:
        return True


class TestHedgeAcceptance:
    WARMUP = 8
    DELAY = 0.05

    def test_hedged_request_yields_one_complete_trace(self, world):
        fault = SlowShard(queries=(), shard_id=0, replica_id=0,
                          delay=self.DELAY, sleep=time.sleep)
        dataset, featurizer = world
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(
                deadline=2.0, admission=AdmissionConfig(),
                cluster=ClusterConfig(
                    num_shards=2, replication=2, hedge_enabled=True,
                    hedge_quantile=0.5, hedge_factor=2.0,
                    hedge_min_wait=0.002, hedge_warmup=5)),
            rng=random.Random(0), cluster_faults=fault)
        ingredients = known_ingredients(service._active.engine, 2)
        for __ in range(self.WARMUP):
            assert service.search_by_ingredients(ingredients, k=3).ok
        fault.queries = _FireAlways()   # straggler from now on
        response = service.search_by_ingredients(ingredients, k=3)
        assert response.ok
        tracer = service.telemetry.tracer
        root = [r for r in tracer.records()
                if r.name == "request"][-1]
        # the losing primary lane may still be sleeping; wait for the
        # hedge span to land before reconstructing the tree
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            hedges = [r for r in tracer.records()
                      if r.name == "hedge"
                      and r.trace_id == root.trace_id]
            if hedges:
                break
            time.sleep(0.005)
        assert hedges, "hedge lane never fired or never closed"
        tree = tree_of(tracer, root.trace_id)
        assert tree.orphans == []        # zero orphan spans
        assert len(tree.roots) == 1      # ONE trace, one root
        stages = {c.name: c for c in tree.root.children}
        assert {"admit", "embed", "index",
                "materialize"} <= set(stages)
        assert [c.name for c in stages["admit"].children] == \
            ["queue_wait"]
        shard_nodes = [c for c in stages["index"].children
                       if c.name == "shard_query"]
        assert sorted(n.record.attributes["shard"]
                      for n in shard_nodes) == [0, 1]
        hedge_nodes = [n for n in tree.root.walk()
                       if n.name == "hedge"]
        assert len(hedge_nodes) == 1
        assert hedge_nodes[0].record.parent_id in {
            n.record.span_id for n in shard_nodes}
        assert hedge_nodes[0].record.attributes["shard"] == 0


# ----------------------------------------------------------------------
# Telemetry wiring, flight bundles, CLI
# ----------------------------------------------------------------------
class TestTelemetryAndFlight:
    def test_telemetry_wires_sampler_and_counts_verdicts(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, trace_sample_fraction=1.0)
        with telemetry.tracer.span("request") as span:
            clock.sleep(0.01)
            span.set_attribute("status", "ok")
        kept = telemetry.sampler.kept()
        assert [t.verdict for t in kept] == ["sampled"]
        counter = telemetry.registry.get("traces_sampled_total")
        assert counter.labels(verdict="sampled").value == 1
        tree = kept_trace_tree(kept[0])
        assert tree.root.name == "request"

    def test_flight_bundle_contains_kept_traces(self, tmp_path):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, trace_sample_fraction=1.0)
        with telemetry.tracer.span("request"):
            with telemetry.tracer.span("embed"):
                clock.sleep(0.002)
        recorder = FlightRecorder(telemetry, tmp_path,
                                  min_interval_s=0.0)
        bundle = recorder.dump(reason="test")
        traces = (bundle / "traces.jsonl").read_text().splitlines()
        assert len(traces) == 1
        row = json.loads(traces[0])
        assert row["verdict"] == "sampled"
        assert {s["name"] for s in row["spans"]} == {"request",
                                                     "embed"}
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["traces"] == 1
        # and the bundle's span file feeds the analyzer directly
        records = spans_from_jsonl(bundle / "traces.jsonl")
        assert len(build_traces(records)) == 1


class TestTraceCli:
    def export(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("request") as root:
            with tracer.span("index"):
                with tracer.span("shard_query", shard=0):
                    clock.sleep(0.2)
        path = tmp_path / "spans.jsonl"
        tracer.export_jsonl(path)
        return path, root.trace_id

    def test_list_show_critpath(self, tmp_path, capsys):
        from repro.cli import main

        path, trace_id = self.export(tmp_path)
        assert main(["trace", "list", "--jsonl", str(path)]) == 0
        listing = capsys.readouterr().out
        assert "request" in listing and str(trace_id) in listing

        assert main(["trace", "show", str(trace_id), "--jsonl",
                     str(path), "--critical"]) == 0
        art = capsys.readouterr().out
        assert "shard_query" in art and "└──" in art and "*" in art

        assert main(["trace", "critpath", "--jsonl", str(path)]) == 0
        breakdown = capsys.readouterr().out
        assert "shard_query" in breakdown and "%" in breakdown

    def test_show_unknown_trace_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        path, __ = self.export(tmp_path)
        assert main(["trace", "show", "99999", "--jsonl",
                     str(path)]) == 1
        assert "not found" in capsys.readouterr().out
