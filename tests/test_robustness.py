"""Unit tests for the robustness layer: checkpoints, health guards,
quarantine validators, and the data-pipeline hardening they plug into."""

import numpy as np
import pytest

from repro.core import Trainer, TrainingConfig, build_scenario
from repro.data import (DatasetConfig, PairBatcher, RecipeFeaturizer,
                        generate_dataset)
from repro.data.io import load_ppm, save_ppm
from repro.nn import Linear, Module, Parameter
from repro.robustness import (FORMAT_VERSION, CheckpointError,
                              CheckpointManager, CheckpointState,
                              HealthMonitor, NumericalHealthError,
                              QuarantineReport, clip_grad_norm,
                              global_grad_norm, truncate_file,
                              validate_image, validate_recipe_entry)


@pytest.fixture(scope="module")
def tiny_setup():
    ds = generate_dataset(DatasetConfig(num_pairs=90, num_classes=5,
                                        image_size=12, seed=7))
    feat = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(ds)
    return {"dataset": ds, "featurizer": feat,
            "train": feat.encode_split(ds, "train"),
            "val": feat.encode_split(ds, "val")}


def small_state(seed=0):
    rng = np.random.default_rng(seed)
    return CheckpointState(
        epoch=3,
        model_state={"layer.weight": rng.normal(size=(4, 3)),
                     "layer.bias": rng.normal(size=3)},
        optimizer_state={"t": 7, "lr": 1e-3,
                         "m": [rng.normal(size=(4, 3)), rng.normal(size=3)],
                         "v": [rng.normal(size=(4, 3)) ** 2,
                               rng.normal(size=3) ** 2]},
        rng_states={"trainer": rng.bit_generator.state, "batcher": None},
        history=[{"epoch": 0, "train_loss": 1.0}],
        best_val_medr=4.5,
        extra={"global_step": 21},
    )


class TestCheckpointManager:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = small_state()
        path = manager.save(state)
        assert path.name == "checkpoint-000003.npz"
        loaded = manager.load(path)
        assert loaded.epoch == 3
        assert loaded.version == FORMAT_VERSION
        for name, values in state.model_state.items():
            np.testing.assert_array_equal(loaded.model_state[name], values)
        for key in ("m", "v"):
            for got, want in zip(loaded.optimizer_state[key],
                                 state.optimizer_state[key]):
                np.testing.assert_array_equal(got, want)
        assert loaded.optimizer_state["t"] == 7
        assert loaded.rng_states["trainer"] == state.rng_states["trainer"]
        assert loaded.history == state.history
        assert loaded.best_val_medr == 4.5
        assert loaded.extra["global_step"] == 21

    def test_prune_keeps_most_recent(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for epoch in range(4):
            state = small_state()
            state.epoch = epoch
            manager.save(state)
        names = [p.name for p in manager.checkpoints()]
        assert names == ["checkpoint-000002.npz", "checkpoint-000003.npz"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointManager(tmp_path).load(tmp_path / "nope.npz")

    def test_truncated_file_raises_and_latest_skips(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=None)
        first = small_state()
        first.epoch = 0
        manager.save(first)
        second = small_state()
        second.epoch = 1
        broken = manager.save(second)
        truncate_file(broken, keep_fraction=0.4)
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            manager.load(broken)
        # latest() must fall back to the older, loadable checkpoint.
        assert manager.latest().name == "checkpoint-000000.npz"
        assert manager.load_latest().epoch == 0

    def test_version_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = small_state()
        state.version = FORMAT_VERSION + 1
        path = manager.save(state)
        with pytest.raises(CheckpointError, match="format version"):
            manager.load(path)


class TestHealthMonitor:
    def _params(self, *values):
        return [Parameter(np.array(v, dtype=np.float64)) for v in values]

    def test_grad_norm_and_clip(self):
        params = self._params([3.0], [4.0])
        for p in params:
            p.grad = p.data.copy()
        assert global_grad_norm(params) == pytest.approx(5.0)
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert global_grad_norm(params) == pytest.approx(1.0)

    def test_non_finite_loss_skipped(self):
        monitor = HealthMonitor(skip_budget=2)
        verdict = monitor.inspect_step(float("nan"), [])
        assert not verdict.healthy
        assert "non-finite loss" in verdict.reason
        assert monitor.skipped == 1

    def test_non_finite_gradient_skipped(self):
        monitor = HealthMonitor(skip_budget=2)
        params = self._params([1.0])
        params[0].grad = np.array([np.inf])
        verdict = monitor.inspect_step(0.5, params)
        assert not verdict.healthy
        assert verdict.reason == "non-finite gradient"

    def test_loss_spike_detected_after_warmup(self):
        monitor = HealthMonitor(spike_factor=10.0, warmup_steps=3,
                                skip_budget=2)
        params = self._params([1.0])
        for _ in range(3):
            params[0].grad = np.array([0.1])
            assert monitor.inspect_step(1.0, params).healthy
        params[0].grad = np.array([0.1])
        verdict = monitor.inspect_step(100.0, params)
        assert not verdict.healthy
        assert "loss spike" in verdict.reason

    def test_skip_budget_exhaustion_raises(self):
        monitor = HealthMonitor(skip_budget=1)
        monitor.inspect_step(float("inf"), [])
        with pytest.raises(NumericalHealthError, match="skip budget"):
            monitor.inspect_step(float("inf"), [])

    def test_params_healthy(self):
        params = self._params([1.0], [2.0])
        assert HealthMonitor.params_healthy(params)
        params[0].data[0] = np.nan
        assert not HealthMonitor.params_healthy(params)


class TestQuarantineValidators:
    def test_validate_image(self):
        good = np.zeros((3, 4, 4))
        assert validate_image(good) is None
        assert "shape" in validate_image(np.zeros((4, 4)))
        bad = good.copy()
        bad[0, 0, 0] = np.nan
        assert "NaN" in validate_image(bad)
        assert "outside" in validate_image(good + 7.0)

    def test_validate_recipe_entry(self):
        entry = {"id": "r00000001", "title": "t",
                 "ingredients": [{"text": "salt"}],
                 "instructions": [{"text": "mix"}]}
        assert validate_recipe_entry(entry) is None
        assert "missing field" in validate_recipe_entry({"id": "x"})
        empty = dict(entry, ingredients=[])
        assert "empty" in validate_recipe_entry(empty)
        assert "outside taxonomy" in validate_recipe_entry(
            entry, num_classes=4, class_id=9)

    def test_report_summary(self):
        report = QuarantineReport()
        assert not report
        report.add("r1", "bad image")
        report.add("r2", "bad image")
        assert len(report) == 2
        assert report.counts_by_reason() == {"bad image": 2}
        assert "2 x bad image" in report.summary()


class TestDatasetQuarantine:
    def test_clean_dataset_untouched(self, tiny_setup):
        ds = tiny_setup["dataset"]
        cleaned, report = ds.quarantine_corrupt()
        assert cleaned is ds
        assert not report

    def test_corrupt_records_dropped_and_reported(self, tiny_setup):
        import copy

        ds = copy.deepcopy(tiny_setup["dataset"])
        victim = ds.recipes[ds.split_indices("train")[0]]
        victim.image[0, 0, 0] = np.nan
        cleaned, report = ds.quarantine_corrupt()
        assert len(cleaned) == len(ds) - 1
        assert report.ids() == [str(victim.recipe_id)]
        assert "NaN" in report.records[0].reason
        # splits stay consistent (remapped, no out-of-range indices)
        for name in ("train", "val", "test"):
            rows = cleaned.split_indices(name)
            assert rows.max(initial=-1) < len(cleaned)


class TestDataGuards:
    def test_batcher_rejects_empty_corpus(self, tiny_setup):
        corpus = tiny_setup["train"].subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="empty corpus"):
            PairBatcher(corpus, batch_size=4)

    def test_batcher_rejects_oversized_batch(self, tiny_setup):
        corpus = tiny_setup["train"]
        with pytest.raises(ValueError, match="exceeds the corpus size"):
            PairBatcher(corpus, batch_size=len(corpus) + 1)

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="batch_size"):
            TrainingConfig(batch_size=1)
        with pytest.raises(ValueError, match="freeze_epochs"):
            TrainingConfig(freeze_epochs=-1)
        with pytest.raises(ValueError, match="learning_rate"):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            TrainingConfig(checkpoint_every=0)
        # freeze_epochs beyond the schedule is allowed (never unfreezes)
        TrainingConfig(epochs=1, freeze_epochs=3)


class TestLoadPpmGuards:
    def _image(self):
        rng = np.random.default_rng(0)
        return rng.uniform(size=(3, 6, 5))

    def test_round_trip_still_works(self, tmp_path):
        path = tmp_path / "img.ppm"
        image = self._image()
        save_ppm(image, path)
        loaded = load_ppm(path)
        assert loaded.shape == image.shape
        assert np.abs(loaded - image).max() < 1 / 255

    def test_truncated_pixels(self, tmp_path):
        path = tmp_path / "img.ppm"
        save_ppm(self._image(), path)
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(ValueError, match="truncated pixel data") as info:
            load_ppm(path)
        assert "img.ppm" in str(info.value)  # error names the file

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "img.ppm"
        path.write_bytes(b"P6\n6 ")
        with pytest.raises(ValueError, match="truncated PPM header"):
            load_ppm(path)

    def test_not_a_ppm(self, tmp_path):
        path = tmp_path / "img.ppm"
        path.write_bytes(b"JFIF....")
        with pytest.raises(ValueError, match="not a binary PPM"):
            load_ppm(path)

    def test_malformed_header_fields(self, tmp_path):
        path = tmp_path / "img.ppm"
        path.write_bytes(b"P6\nsix 4 255\n" + b"\0" * 80)
        with pytest.raises(ValueError, match="malformed PPM header"):
            load_ppm(path)


class TestStateRestoreSemantics:
    def test_load_state_dict_is_in_place(self):
        """Restoring must keep the original parameter buffers (rebinding
        changes BLAS buffer alignment and breaks bitwise resume)."""
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        buffers = {name: param.data
                   for name, param in layer.named_parameters()}
        state = {name: values + 1.0
                 for name, values in layer.state_dict().items()}
        layer.load_state_dict(state)
        for name, param in layer.named_parameters():
            assert param.data is buffers[name]
            np.testing.assert_array_equal(param.data, state[name])

    def test_best_state_is_a_deep_copy(self, tiny_setup):
        """Regression: the best-epoch snapshot must not alias live
        parameters, or later epochs silently corrupt model selection."""
        feat = tiny_setup["featurizer"]
        model, config = build_scenario(
            "adamine", feat, 5, 12,
            base_config=TrainingConfig(epochs=1, freeze_epochs=0,
                                       batch_size=8, augment=False,
                                       eval_bag_size=10, eval_num_bags=1),
            latent_dim=8)
        trainer = Trainer(model, config)
        trainer.fit(tiny_setup["train"], tiny_setup["val"])
        assert trainer._best_state is not None
        for name, param in model.named_parameters():
            snapshot = trainer._best_state[name]
            assert snapshot is not param.data
            assert not np.shares_memory(snapshot, param.data)
