"""Unit tests for dense layers, embeddings, activations and normalization."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients


RNG = lambda seed=0: np.random.default_rng(seed)


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(4, 7, RNG())
        out = layer(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)

    def test_matches_manual_affine(self):
        layer = nn.Linear(3, 2, RNG())
        x = RNG(1).normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, RNG(), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self):
        layer = nn.Linear(3, 2, RNG())
        x = Tensor(RNG(2).normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])

    def test_weight_gradients_flow(self):
        layer = nn.Linear(3, 2, RNG())
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4, RNG())
        out = emb(np.array([[1, 2], [3, 0]]))
        assert out.shape == (2, 2, 4)

    def test_padding_row_zeroed(self):
        emb = nn.Embedding(10, 4, RNG())
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(4))

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 4, RNG())
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_for_repeated_tokens(self):
        emb = nn.Embedding(5, 3, RNG())
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 3 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[1], np.zeros(3))

    def test_from_pretrained_frozen(self):
        vectors = RNG(3).normal(size=(6, 4))
        emb = nn.Embedding.from_pretrained(vectors, freeze=True)
        assert not emb.weight.requires_grad
        np.testing.assert_allclose(emb.weight.data[1:], vectors[1:])
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(4))


class TestActivationsDropout:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_tanh_sigmoid_modules(self):
        x = Tensor(np.array([0.0]))
        assert nn.Tanh()(x).item() == pytest.approx(0.0)
        assert nn.Sigmoid()(x).item() == pytest.approx(0.5)

    def test_dropout_eval_identity(self):
        drop = nn.Dropout(0.5, RNG())
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_train_preserves_mean(self):
        drop = nn.Dropout(0.3, RNG())
        x = Tensor(np.ones((200, 200)))
        out = drop(x)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_zero_p_identity(self):
        drop = nn.Dropout(0.0, RNG())
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, RNG())


class TestNormalization:
    def test_layernorm_zero_mean_unit_var(self):
        ln = nn.LayerNorm(16)
        out = ln(Tensor(RNG(4).normal(2.0, 3.0, size=(8, 16))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(8),
                                   atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(8),
                                   atol=1e-3)

    def test_layernorm_gradcheck(self):
        ln = nn.LayerNorm(5)
        x = Tensor(RNG(5).normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda x: ln(x), [x], atol=1e-4)

    def test_batchnorm_train_normalizes(self):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(RNG(6).normal(5.0, 2.0, size=(64, 4))))
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(4),
                                   atol=1e-8)

    def test_batchnorm_updates_running_stats(self):
        bn = nn.BatchNorm1d(2)
        before = bn.running_mean.copy()
        bn(Tensor(RNG(7).normal(3.0, 1.0, size=(32, 2))))
        assert not np.allclose(bn.running_mean, before)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        batch = RNG(8).normal(3.0, 1.0, size=(64, 2))
        for __ in range(60):
            bn(Tensor(batch))
        bn.eval()
        # At the batch mean, a converged BN must output ~zero.
        out = bn(Tensor(np.tile(batch.mean(axis=0), (4, 1))))
        np.testing.assert_allclose(out.data, np.zeros((4, 2)), atol=0.05)


class TestContainers:
    def test_sequential_chains(self):
        model = nn.Sequential(nn.Linear(3, 5, RNG()), nn.ReLU(),
                              nn.Linear(5, 2, RNG(1)))
        out = model(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)
        assert len(model) == 3

    def test_sequential_parameters_collected(self):
        model = nn.Sequential(nn.Linear(3, 5, RNG()), nn.Linear(5, 2, RNG(1)))
        assert len(model.parameters()) == 4

    def test_modulelist_tracks_parameters(self):
        mlist = nn.ModuleList([nn.Linear(2, 2, RNG(i)) for i in range(3)])
        assert len(mlist.parameters()) == 6
        mlist.append(nn.Linear(2, 2, RNG(9)))
        assert len(mlist) == 4
