"""Unit tests for Kernel CCA."""

import numpy as np
import pytest

from repro.baselines import CCA, KernelCCA
from repro.retrieval import evaluate_embeddings


RNG = lambda seed=0: np.random.default_rng(seed)


def nonlinear_views(n=200, seed=0):
    """Two views nonlinearly driven by a shared 2-D latent signal."""
    rng = RNG(seed)
    latent = rng.uniform(-1, 1, size=(n, 2))
    x = np.column_stack([np.sin(2 * latent[:, 0]), latent[:, 1] ** 3,
                         latent[:, 0] * latent[:, 1]])
    x += 0.05 * rng.normal(size=x.shape)
    y = np.column_stack([np.cos(2 * latent[:, 0]), np.abs(latent[:, 1]),
                         latent.sum(axis=1)])
    y += 0.05 * rng.normal(size=y.shape)
    return x, y


class TestKernelCCA:
    def test_finds_correlation_in_nonlinear_views(self):
        x, y = nonlinear_views()
        kcca = KernelCCA(dim=3, reg=1e-2).fit(x, y)
        assert kcca.correlations[0] > 0.5

    def test_retrieval_beats_chance(self):
        x, y = nonlinear_views(n=150, seed=1)
        px, py = KernelCCA(dim=4, reg=1e-2).fit_transform(x, y)
        result = evaluate_embeddings(px, py, bag_size=150, num_bags=1)
        assert result.medr() < 40  # chance is 75

    def test_beats_linear_cca_on_nonlinear_data(self):
        x, y = nonlinear_views(n=150, seed=2)
        kx, ky = KernelCCA(dim=4, reg=1e-2).fit_transform(x, y)
        lx, ly = CCA(dim=3, reg=1e-3).fit_transform(x, y)
        kernel_medr = evaluate_embeddings(kx, ky, bag_size=150,
                                          num_bags=1).medr()
        linear_medr = evaluate_embeddings(lx, ly, bag_size=150,
                                          num_bags=1).medr()
        assert kernel_medr <= linear_medr

    def test_transform_new_samples(self):
        x, y = nonlinear_views(n=120, seed=3)
        kcca = KernelCCA(dim=3, reg=1e-2).fit(x[:100], y[:100])
        out = kcca.transform_x(x[100:])
        assert out.shape == (20, 3)
        assert np.isfinite(out).all()

    def test_median_heuristic_sets_gammas(self):
        x, y = nonlinear_views(n=60, seed=4)
        kcca = KernelCCA(dim=2).fit(x, y)
        assert kcca.gamma_x > 0 and kcca.gamma_y > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KernelCCA().transform_x(np.zeros((3, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelCCA(dim=0)
        with pytest.raises(ValueError):
            KernelCCA(reg=0.0)
        with pytest.raises(ValueError):
            KernelCCA().fit(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            KernelCCA().fit(np.zeros((2, 2)), np.zeros((2, 2)))
