"""Model persistence: trained scenarios survive a save/load roundtrip."""

import numpy as np
import pytest

from repro.core import Trainer, TrainingConfig, build_scenario
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset


@pytest.fixture(scope="module")
def setup():
    ds = generate_dataset(DatasetConfig(num_pairs=100, num_classes=5,
                                        image_size=12, seed=31))
    feat = RecipeFeaturizer(word_dim=10, sentence_dim=10).fit(ds)
    train = feat.encode_split(ds, "train")
    config = TrainingConfig(epochs=2, freeze_epochs=0, batch_size=16,
                            learning_rate=2e-3, augment=False,
                            select_best=False)
    model, cfg = build_scenario("adamine", feat, 5, 12, base_config=config,
                                latent_dim=16, seed=0)
    Trainer(model, cfg).fit(train)
    return feat, train, model


def test_embeddings_identical_after_roundtrip(setup, tmp_path):
    feat, train, model = setup
    path = tmp_path / "adamine.npz"
    model.save(path)

    clone, __ = build_scenario("adamine", feat, 5, 12,
                               base_config=TrainingConfig(epochs=1),
                               latent_dim=16, seed=99)  # different init
    clone.load(path)

    original = model.encode_corpus(train)[0]
    restored = clone.encode_corpus(train)[0]
    np.testing.assert_allclose(original, restored, atol=1e-12)


def test_scenarios_have_disjoint_state_shapes(setup, tmp_path):
    feat, __, model = setup
    path = tmp_path / "adamine.npz"
    model.save(path)
    # a model with a classifier head cannot load a headless state dict
    other, __ = build_scenario("adamine_ins_cls", feat, 5, 12,
                               base_config=TrainingConfig(epochs=1),
                               latent_dim=16, seed=0)
    with pytest.raises(KeyError):
        other.load(path)


def test_training_continues_after_reload(setup, tmp_path):
    feat, train, model = setup
    path = tmp_path / "checkpoint.npz"
    model.save(path)
    clone, cfg = build_scenario(
        "adamine", feat, 5, 12,
        base_config=TrainingConfig(epochs=1, freeze_epochs=0,
                                   batch_size=16, augment=False,
                                   select_best=False),
        latent_dim=16, seed=0)
    clone.load(path)
    history = Trainer(clone, cfg).fit(train)
    assert np.isfinite(history[0].train_loss)
