"""Unit tests for the resilient serving layer (fast, no chaos)."""

import random

import numpy as np
import pytest

from repro.serving import (CircuitBreaker, CircuitState, Deadline,
                           DeadlineExceeded, DegradedRanker,
                           ResilientSearchService, RetryPolicy,
                           ServiceConfig)

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)


@pytest.fixture(scope="module")
def world():
    return make_world()


@pytest.fixture(scope="module")
def engine(world):
    dataset, featurizer = world
    return make_engine(dataset, featurizer)


def make_service(engine, clock=None, **overrides):
    clock = clock or FakeClock()
    config = ServiceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        **overrides)
    return ResilientSearchService(engine, config, clock=clock,
                                  sleep=clock.sleep,
                                  rng=random.Random(0)), clock


class TestDeadline:
    def test_drains_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.sleep(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.sleep(1.0)
        assert deadline.expired

    def test_check_raises_with_stage(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("embed")  # fine
        clock.sleep(2.0)
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("index")
        assert info.value.stage == "index"

    def test_clamp_bounds_sleeps(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.clamp(10.0) == pytest.approx(1.0)
        assert deadline.clamp(0.25) == pytest.approx(0.25)
        clock.sleep(5.0)
        assert deadline.clamp(0.25) == 0.0

    def test_sub_budget_fraction(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        child = deadline.sub(0.5)
        clock.sleep(0.9)
        assert not child.expired
        clock.sleep(0.2)
        assert child.expired
        assert not deadline.expired

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.5,
                             jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, factor=1.0, jitter=0.5)
        rng = random.Random(3)
        for attempt in range(20):
            delay = policy.delay(0, rng)
            assert 0.1 <= delay <= 0.15

    def test_jitter_deterministic_with_seeded_rng(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        a = [policy.delay(i, random.Random(9)) for i in range(3)]
        b = [policy.delay(i, random.Random(9)) for i in range(3)]
        assert a == b


class TestCircuitBreaker:
    def make(self, clock):
        return CircuitBreaker("dep", failure_threshold=3,
                              reset_after=5.0, half_open_successes=2,
                              clock=clock)

    def test_trips_after_threshold(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED

    def test_half_open_after_cooloff_then_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(5.0)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.transitions == [CircuitState.OPEN,
                                       CircuitState.HALF_OPEN,
                                       CircuitState.CLOSED]

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.sleep(5.0)
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        clock.sleep(4.0)  # cool-off restarted, not yet elapsed
        assert breaker.state is CircuitState.OPEN

    def test_reset_force_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()


class TestDegradedRanker:
    @pytest.fixture(scope="class")
    def ranker(self, engine):
        return DegradedRanker(engine.dataset, engine.corpus)

    def test_ranks_recipes_containing_query_ingredient_first(
            self, ranker, engine):
        corpus = engine.corpus
        target = engine.dataset[int(corpus.recipe_indices[0])]
        query = list(target.ingredients[:3])
        rows, distances = ranker.rank_ingredients(query, k=len(ranker))
        top = engine.dataset[int(corpus.recipe_indices[int(rows[0])])]
        assert ({q.lower() for q in query}
                & {i.lower() for i in top.ingredients})
        assert list(distances) == sorted(distances)
        assert all(0.0 <= d <= 1.0 for d in distances)

    def test_class_filter_respected(self, ranker, engine):
        class_ids = engine.corpus.true_class_ids
        class_id = int(np.bincount(class_ids).argmax())
        rows, _ = ranker.rank_ingredients(["butter"], k=3,
                                          class_id=class_id)
        assert all(class_ids[row] == class_id for row in rows)

    def test_rank_default_is_deterministic(self, ranker):
        first = ranker.rank_default(k=4)
        second = ranker.rank_default(k=4)
        assert np.array_equal(first[0], second[0])
        assert np.all(first[1] == 1.0)

    def test_unknown_class_raises(self, ranker):
        with pytest.raises(ValueError):
            ranker.rank_ingredients(["butter"], k=3, class_id=999)


class TestServiceHappyPath:
    def test_ingredient_search_ok(self, engine):
        service, _ = make_service(engine)
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3)
        assert response.ok
        assert response.outcome.status == "ok"
        assert not response.degraded
        assert response.generation == 0
        assert len(response.results) == 3
        assert response.outcome.attempts == 1
        assert service.stats()["statuses"] == {"ok": 1}

    def test_recipe_and_image_and_without(self, engine):
        service, _ = make_service(engine)
        recipe = engine.dataset[int(engine.corpus.recipe_indices[1])]
        assert service.search_by_recipe(recipe, k=2).ok
        assert service.search_by_image(engine.corpus.images[0], k=2).ok
        assert service.search_without(recipe, recipe.ingredients[0],
                                      k=2).ok
        assert service.stats()["statuses"] == {"ok": 3}

    def test_outcomes_are_recorded_in_order(self, engine):
        service, _ = make_service(engine)
        ingredients = known_ingredients(engine)
        for _ in range(3):
            service.search_by_ingredients(ingredients, k=2)
        assert [o.request_id for o in service.outcomes] == [0, 1, 2]

    def test_invalid_class_is_contained(self, engine):
        service, _ = make_service(engine)
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3, class_name="no-such-dish")
        assert response.outcome.status == "invalid"
        assert not response.ok
        assert response.results == ()
        assert "no-such-dish" in response.outcome.error

    def test_unknown_ingredients_are_contained(self, engine):
        service, _ = make_service(engine)
        response = service.search_by_ingredients(["vibranium"], k=3)
        assert response.outcome.status == "invalid"
        assert response.results == ()

    def test_shedding_when_queue_full(self, engine):
        service, _ = make_service(engine, max_inflight=0)
        response = service.search_by_ingredients(
            known_ingredients(engine), k=3)
        assert response.outcome.status == "shed"
        assert response.outcome.stage == "admission"
        assert response.results == ()
        assert service.stats()["statuses"] == {"shed": 1}

    def test_stats_shape(self, engine):
        service, _ = make_service(engine)
        stats = service.stats()
        assert stats["generation"] == 0
        assert stats["embed_breaker"] == "closed"
        assert stats["index_breaker"] == "closed"
        assert stats["inflight"] == 0


class TestHotSwap:
    def test_swap_promotes_new_generation(self, world, engine):
        dataset, featurizer = world
        service, _ = make_service(engine)
        new_corpus = featurizer.encode_split(dataset, "val")
        report = service.swap_corpus(new_corpus)
        assert report.ok and not report.rolled_back
        assert report.canaries_run >= 3
        assert service.generation == 1
        response = service.search_by_ingredients(
            known_ingredients(engine), k=2)
        assert response.generation == 1
        # results resolve through the *new* corpus row mapping
        for result in response.results:
            recipe_index = int(new_corpus.recipe_indices[result.corpus_row])
            assert dataset[recipe_index].recipe_id == result.recipe.recipe_id

    def test_canary_failure_rolls_back(self, world, engine):
        dataset, featurizer = world
        service, _ = make_service(engine)
        poisoned = featurizer.encode_split(dataset, "val")
        poisoned.images[:] = np.nan  # NaN pixels poison image embeddings
        report = service.swap_corpus(poisoned)
        assert not report.ok and report.rolled_back
        assert report.failures
        assert service.generation == 0
        # the surviving generation keeps answering
        assert service.search_by_ingredients(known_ingredients(engine),
                                             k=2).ok

    def test_swap_report_summary_mentions_verdict(self, world, engine):
        dataset, featurizer = world
        service, _ = make_service(engine)
        report = service.swap_corpus(featurizer.encode_split(dataset,
                                                             "val"))
        assert "swapped" in report.summary()
