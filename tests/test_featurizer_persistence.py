"""Featurizer persistence: encodings must be identical after reload."""

import numpy as np
import pytest

from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset


@pytest.fixture(scope="module")
def fitted():
    ds = generate_dataset(DatasetConfig(num_pairs=80, num_classes=5,
                                        image_size=12, seed=71))
    feat = RecipeFeaturizer(word_dim=10, sentence_dim=10,
                            max_ingredients=9, max_sentences=5).fit(ds)
    return ds, feat


def test_roundtrip_preserves_encodings(fitted, tmp_path):
    ds, feat = fitted
    feat.save(tmp_path)
    restored = RecipeFeaturizer.load(tmp_path)
    for recipe in ds.split("test")[:10]:
        ids_a, n_a, vec_a, s_a = feat.encode_recipe(recipe)
        ids_b, n_b, vec_b, s_b = restored.encode_recipe(recipe)
        np.testing.assert_array_equal(ids_a, ids_b)
        assert n_a == n_b and s_a == s_b
        np.testing.assert_allclose(vec_a, vec_b, atol=1e-12)


def test_roundtrip_preserves_dimensions(fitted, tmp_path):
    __, feat = fitted
    feat.save(tmp_path)
    restored = RecipeFeaturizer.load(tmp_path)
    assert restored.word_dim == feat.word_dim
    assert restored.sentence_dim == feat.sentence_dim
    assert restored.max_ingredients == feat.max_ingredients
    assert restored.max_sentences == feat.max_sentences
    np.testing.assert_allclose(restored.ingredient_vectors,
                               feat.ingredient_vectors)


def test_roundtrip_preserves_vocab(fitted, tmp_path):
    __, feat = fitted
    feat.save(tmp_path)
    restored = RecipeFeaturizer.load(tmp_path)
    assert restored.ingredient_vocab.tokens == feat.ingredient_vocab.tokens


def test_unfitted_save_raises(tmp_path):
    with pytest.raises(RuntimeError):
        RecipeFeaturizer().save(tmp_path)


def test_encoded_corpora_match(fitted, tmp_path):
    ds, feat = fitted
    feat.save(tmp_path)
    restored = RecipeFeaturizer.load(tmp_path)
    a = feat.encode_split(ds, "val")
    b = restored.encode_split(ds, "val")
    np.testing.assert_array_equal(a.ingredient_ids, b.ingredient_ids)
    np.testing.assert_allclose(a.sentence_vectors, b.sentence_vectors)
