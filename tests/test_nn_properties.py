"""Property-based invariants of the neural network substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.autograd import Tensor


RNG = lambda seed=0: np.random.default_rng(seed)


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
def test_conv_is_linear_without_bias(scale):
    conv = nn.Conv2d(2, 3, 3, RNG(0), padding=1, bias=False)
    x = RNG(1).normal(size=(1, 2, 6, 6))
    direct = conv(Tensor(x * scale)).data
    scaled = conv(Tensor(x)).data * scale
    np.testing.assert_allclose(direct, scaled, atol=1e-10)


def test_conv_translation_equivariance_interior():
    conv = nn.Conv2d(1, 2, 3, RNG(2), padding=1)
    x = np.zeros((1, 1, 10, 10))
    x[0, 0, 4, 4] = 1.0
    shifted = np.roll(x, shift=2, axis=3)
    out = conv(Tensor(x)).data
    out_shifted = conv(Tensor(shifted)).data
    # away from borders the response just translates
    np.testing.assert_allclose(out[..., 3:6, 3:6],
                               out_shifted[..., 3:6, 5:8], atol=1e-10)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=6))
def test_lstm_batch_independence(batch):
    """Each sequence's encoding must not depend on its batch neighbours."""
    lstm = nn.LSTM(3, 4, RNG(3))
    rng = RNG(4)
    x = rng.normal(size=(batch, 5, 3))
    lengths = rng.integers(1, 6, size=batch)
    __, together = lstm(Tensor(x), lengths)
    for i in range(batch):
        __, alone = lstm(Tensor(x[i:i + 1]), lengths[i:i + 1])
        np.testing.assert_allclose(together.data[i], alone.data[0],
                                   atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_linear_batch_permutation_equivariance(seed):
    layer = nn.Linear(4, 3, RNG(5))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(6, 4))
    order = rng.permutation(6)
    np.testing.assert_allclose(layer(Tensor(x[order])).data,
                               layer(Tensor(x)).data[order])


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                max_size=8))
def test_embedding_gather_property(ids):
    emb = nn.Embedding(10, 5, RNG(6))
    out = emb(np.array(ids))
    for row, token in enumerate(ids):
        np.testing.assert_allclose(out.data[row], emb.weight.data[token])


def test_bilstm_batch_independence():
    bilstm = nn.BiLSTM(3, 4, RNG(7))
    rng = RNG(8)
    x = rng.normal(size=(4, 6, 3))
    lengths = np.array([6, 3, 1, 5])
    together = bilstm(Tensor(x), lengths)
    for i in range(4):
        alone = bilstm(Tensor(x[i:i + 1]), lengths[i:i + 1])
        np.testing.assert_allclose(together.data[i], alone.data[0],
                                   atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=4))
def test_maxpool_idempotent_on_constant(channels):
    x = Tensor(np.full((1, channels, 4, 4), 2.5))
    out = nn.MaxPool2d(2)(x)
    np.testing.assert_allclose(out.data, np.full((1, channels, 2, 2), 2.5))


def test_layernorm_scale_invariance():
    ln = nn.LayerNorm(8)
    x = RNG(9).normal(size=(3, 8))
    a = ln(Tensor(x)).data
    b = ln(Tensor(x * 100.0)).data
    # invariance holds up to the eps regularizer's relative weight
    np.testing.assert_allclose(a, b, atol=1e-3)


def test_dropout_mask_independent_across_calls():
    drop = nn.Dropout(0.5, RNG(10))
    x = Tensor(np.ones((1, 1000)))
    a = drop(x).data
    b = drop(x).data
    assert not np.allclose(a, b)
