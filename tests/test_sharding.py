"""Shard placement and exact top-k merging (tier-1).

The headline property lives at the bottom: for *any* shard/replica
layout, a fault-free :class:`IndexCluster` returns ids AND distances
bitwise identical to the monolithic index — the contract that makes
sharding an operational choice, not a quality trade-off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.index import NearestNeighborIndex
from repro.serving.cluster import ClusterConfig, IndexCluster
from repro.serving.sharding import (merge_topk, partition_positions,
                                    shard_of, stable_hash64)


class TestStableHash:
    def test_deterministic_across_calls(self):
        ids = np.arange(1000)
        assert np.array_equal(stable_hash64(ids), stable_hash64(ids))

    def test_matches_scalar_path(self):
        ids = np.array([0, 1, 7, 12345, 2**40])
        for item in ids:
            assert (shard_of(int(item), 7)
                    == int(stable_hash64(ids[ids == item])[0] % 7))

    def test_well_mixed(self):
        # Consecutive ids must not land on consecutive shards — the
        # whole point of hashing over modulo-on-the-raw-id.
        shards = stable_hash64(np.arange(1000)) % np.uint64(4)
        counts = np.bincount(shards.astype(np.int64), minlength=4)
        assert counts.min() > 150  # roughly balanced, not striped

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_of(1, 0)


class TestPartition:
    def test_exact_cover(self):
        ids = np.arange(101)
        parts = partition_positions(ids, 5)
        merged = np.sort(np.concatenate(parts))
        assert np.array_equal(merged, np.arange(101))

    def test_positions_ascend_within_shard(self):
        parts = partition_positions(np.arange(300), 7)
        for part in parts:
            assert np.all(np.diff(part) > 0)

    def test_single_shard_is_identity(self):
        parts = partition_positions(np.arange(30), 1)
        assert len(parts) == 1
        assert np.array_equal(parts[0], np.arange(30))

    def test_placement_ignores_row_order(self):
        # Placement is a function of the id, not of where the id
        # happens to sit — a rebuilt corpus shards identically.
        ids = np.array([5, 9, 2, 40, 17])
        a = partition_positions(ids, 3)
        b = partition_positions(ids[::-1].copy(), 3)
        for part_a, part_b in zip(a, b):
            assert set(ids[part_a]) == set(ids[::-1][part_b])


class TestMergeTopK:
    def test_merges_and_truncates(self):
        parts = [(np.array([0, 2]), np.array([0.3, 0.1])),
                 (np.array([1, 3]), np.array([0.2, 0.4]))]
        positions, distances = merge_topk(parts, 3)
        assert positions.tolist() == [2, 1, 0]
        assert distances.tolist() == [0.1, 0.2, 0.3]

    def test_ties_break_by_position(self):
        parts = [(np.array([7]), np.array([0.5])),
                 (np.array([3]), np.array([0.5]))]
        positions, _ = merge_topk(parts, 2)
        assert positions.tolist() == [3, 7]

    def test_empty_parts_are_skipped(self):
        parts = [(np.empty(0, dtype=np.int64), np.empty(0)),
                 (np.array([4]), np.array([0.9]))]
        positions, distances = merge_topk(parts, 5)
        assert positions.tolist() == [4]
        assert distances.tolist() == [0.9]

    def test_all_empty_yields_empty_pair(self):
        positions, distances = merge_topk([], 3)
        assert positions.shape == (0,) and positions.dtype == np.int64
        assert distances.shape == (0,) and distances.dtype == np.float64

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            merge_topk([], 0)


def _cluster_world(num_items: int, seed: int):
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(num_items, 12))
    class_ids = rng.integers(0, 3, size=num_items)
    return NearestNeighborIndex(embeddings, class_ids=class_ids), rng


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=12),
       st.booleans(),
       st.integers(min_value=0, max_value=10_000))
def test_cluster_bitwise_identical_to_monolith(num_shards, replication,
                                               k, use_class, seed):
    """Fault-free fan-out == monolithic query, bit for bit, for any
    shard/replica layout, k, and class constraint."""
    index, rng = _cluster_world(60, seed)
    cluster = IndexCluster(
        index, ClusterConfig(num_shards=num_shards,
                             replication=replication))
    vector = rng.normal(size=12)
    class_id = int(rng.integers(0, 3)) if use_class else None
    ids, distances = index.query(vector, k=k, class_id=class_id)
    result = cluster.query(vector, k=k, class_id=class_id)
    assert result.shards_answered == num_shards
    assert not result.partial
    assert np.array_equal(ids, result.ids)
    assert distances.tobytes() == result.distances.tobytes()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=10_000))
def test_sequential_cluster_matches_parallel(num_shards, seed):
    """parallel=False is a pure escape hatch — same bits, no threads."""
    index, rng = _cluster_world(40, seed)
    vector = rng.normal(size=12)
    par = IndexCluster(index, ClusterConfig(num_shards=num_shards))
    seq = IndexCluster(index, ClusterConfig(num_shards=num_shards,
                                            parallel=False))
    a = par.query(vector, k=6)
    b = seq.query(vector, k=6)
    assert np.array_equal(a.ids, b.ids)
    assert a.distances.tobytes() == b.distances.tobytes()
