"""Unit tests for the high-level RecipeSearchEngine."""

import numpy as np
import pytest

from repro.core import (RecipeSearchEngine, Trainer, TrainingConfig,
                        build_scenario)
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.data.schema import Recipe


@pytest.fixture(scope="module")
def engine():
    ds = generate_dataset(DatasetConfig(num_pairs=150, num_classes=6,
                                        image_size=12, seed=51))
    feat = RecipeFeaturizer(word_dim=10, sentence_dim=10).fit(ds)
    train = feat.encode_split(ds, "train")
    val = feat.encode_split(ds, "val")
    model, config = build_scenario(
        "adamine", feat, 6, 12,
        base_config=TrainingConfig(epochs=4, freeze_epochs=0,
                                   batch_size=24, learning_rate=2e-3,
                                   augment=False, eval_bag_size=20,
                                   eval_num_bags=1),
        latent_dim=20)
    Trainer(model, config).fit(train, val)
    test = feat.encode_split(ds, "test")
    return RecipeSearchEngine(model, feat, ds, test)


class TestEmbedding:
    def test_recipe_embedding_unit_norm(self, engine):
        recipe = engine.dataset[int(engine.corpus.recipe_indices[0])]
        vec = engine.embed_recipe(recipe)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_image_embedding_unit_norm(self, engine):
        vec = engine.embed_image(engine.corpus.images[0])
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_image_embedding_rejects_batch(self, engine):
        with pytest.raises(ValueError):
            engine.embed_image(engine.corpus.images[:2])

    def test_ingredient_embedding(self, engine):
        vec = engine.embed_ingredients(["butter", "onion"])
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_unknown_ingredients_raise(self, engine):
        with pytest.raises(ValueError):
            engine.embed_ingredients(["vibranium"])

    def test_partial_unknown_ok(self, engine):
        vec = engine.embed_ingredients(["vibranium", "butter"])
        assert np.isfinite(vec).all()


class TestSearch:
    def test_search_by_recipe_finds_own_image(self, engine):
        recipe = engine.dataset[int(engine.corpus.recipe_indices[3])]
        results = engine.search_by_recipe(recipe, k=len(engine))
        rows = [r.corpus_row for r in results]
        assert 3 in rows  # own pair somewhere in the full ranking

    def test_search_returns_sorted_distances(self, engine):
        recipe = engine.dataset[int(engine.corpus.recipe_indices[0])]
        results = engine.search_by_recipe(recipe, k=6)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_search_by_image_returns_recipes(self, engine):
        results = engine.search_by_image(engine.corpus.images[5], k=4)
        assert len(results) == 4
        assert all(r.recipe.title for r in results)

    def test_class_constrained_search(self, engine):
        corpus = engine.corpus
        class_id = int(np.bincount(corpus.true_class_ids).argmax())
        class_name = engine.dataset.taxonomy[class_id].name
        recipe = engine.dataset[int(corpus.recipe_indices[0])]
        results = engine.search_by_recipe(recipe, k=3,
                                          class_name=class_name)
        for result in results:
            assert (corpus.true_class_ids[result.corpus_row] == class_id)

    def test_search_by_ingredients(self, engine):
        results = engine.search_by_ingredients(["butter"], k=5)
        assert len(results) == 5

    def test_search_without_ingredient(self, engine):
        corpus = engine.corpus
        row = next(r for r in range(len(corpus))
                   if len(engine.dataset[
                       int(corpus.recipe_indices[r])].ingredients) > 3)
        recipe = engine.dataset[int(corpus.recipe_indices[row])]
        ingredient = recipe.ingredients[-1]
        results = engine.search_without(recipe, ingredient, k=4)
        assert len(results) == 4

    def test_len(self, engine):
        assert len(engine) == len(engine.corpus)

    def test_search_without_forwards_class_constraint(self, engine):
        corpus = engine.corpus
        class_id = int(np.bincount(corpus.true_class_ids).argmax())
        class_name = engine.dataset.taxonomy[class_id].name
        row = next(r for r in range(len(corpus))
                   if len(engine.dataset[
                       int(corpus.recipe_indices[r])].ingredients) > 3)
        recipe = engine.dataset[int(corpus.recipe_indices[row])]
        results = engine.search_without(recipe, recipe.ingredients[-1],
                                        k=3, class_name=class_name)
        assert results
        for result in results:
            assert corpus.true_class_ids[result.corpus_row] == class_id


class TestErrorPaths:
    def test_empty_recipe_rejected(self, engine):
        empty = Recipe(recipe_id=-1, title="nothing", class_id=None,
                       true_class_id=0, ingredients=[], instructions=[],
                       image=np.zeros((3, 12, 12)))
        with pytest.raises(ValueError, match="neither ingredients"):
            engine.embed_recipe(empty)

    def test_non_finite_query_image_rejected(self, engine):
        with pytest.raises(ValueError, match="rejected"):
            engine.embed_image(np.full((3, 12, 12), np.nan))

    def test_empty_ingredient_list_rejected(self, engine):
        with pytest.raises(ValueError, match="empty ingredient"):
            engine.embed_ingredients([])

    def test_unknown_class_lists_valid_names(self, engine):
        recipe = engine.dataset[int(engine.corpus.recipe_indices[0])]
        with pytest.raises(ValueError, match="valid classes"):
            engine.search_by_recipe(recipe, k=2, class_name="flambé")

    def test_unknown_ingredient_search_rejected(self, engine):
        with pytest.raises(ValueError, match="vocabulary"):
            engine.search_by_ingredients(["vibranium"], k=2)


class TestMeanInstructionVector:
    def test_matches_naive_loop(self, engine):
        corpus = engine.corpus
        total = np.zeros(corpus.sentence_vectors.shape[2])
        count = 0
        for row in range(len(corpus)):
            length = int(corpus.sentence_lengths[row])
            total += corpus.sentence_vectors[row, :length].sum(axis=0)
            count += length
        expected = total / max(count, 1)
        np.testing.assert_allclose(engine._mean_instruction_vector(),
                                   expected)

    def test_cached_across_calls(self, engine):
        first = engine._mean_instruction_vector()
        assert engine._mean_instruction_vector() is first
