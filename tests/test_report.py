"""Integration test of the markdown report generator."""

import pytest

from repro.experiments.report import generate_report
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def report():
    return generate_report(ExperimentRunner(scale="test"))


def test_report_has_all_sections(report):
    for heading in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                    "Figure 3", "Figure 4", "Latent-space diagnostics"):
        assert heading in report


def test_report_includes_paper_reference_numbers(report):
    assert "15.4 / 15.8" in report   # paper's AdaMine_ins 10k row
    assert "499.0" in report         # paper's random 1k row


def test_report_is_valid_markdown_tables(report):
    lines = [l for l in report.splitlines() if l.startswith("|")]
    assert lines, "no tables rendered"
    for line in lines:
        assert line.count("|") >= 3


def test_report_mentions_scale(report):
    assert "scale `test`" in report
