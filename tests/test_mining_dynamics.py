"""Scientific unit tests of the adaptive mining dynamics (§3.3).

These test the *mechanism* behind the paper's Eq. 4–5 claims, not just
the arithmetic: the adaptive update realizes an automatic curriculum
(average strategy early, hard-negative strategy late) and keeps the
λ trade-off meaningful when the two losses' active counts diverge.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, l2_normalize
from repro.core import (aggregate_triplets, instance_triplet_loss,
                        semantic_triplet_loss)
from repro.nn import Parameter
from repro.optim import SGD


def test_early_training_adaptive_equals_average():
    """When every triplet violates its constraint (start of training),
    β' == total and δ_adm reduces to plain averaging."""
    rng = np.random.default_rng(0)
    # collapse both modalities to nearly one point: every triplet active
    img = l2_normalize(Tensor(np.ones((8, 4)) + 0.001 * rng.normal(
        size=(8, 4)), requires_grad=True))
    rec = l2_normalize(Tensor(np.ones((8, 4)) + 0.001 * rng.normal(
        size=(8, 4)), requires_grad=True))
    adaptive = instance_triplet_loss(img, rec, strategy="adaptive")
    average = instance_triplet_loss(img, rec, strategy="average")
    assert adaptive.active_fraction == 1.0
    assert adaptive.loss.item() == pytest.approx(average.loss.item())


def test_late_training_adaptive_follows_hard_negatives():
    """With one violation left, the adaptive scalar equals that
    violation (hard-negative behaviour), while averaging shrinks it by
    the triplet count."""
    losses = np.zeros(200)
    losses[17] = 0.42
    t = Tensor(losses)
    assert aggregate_triplets(t, "adaptive").item() == pytest.approx(0.42)
    assert aggregate_triplets(t, "average").item() == pytest.approx(
        0.42 / 200)


def test_lambda_tradeoff_preserved_under_imbalanced_active_counts():
    """Eq. 4's independent normalization: if ℓ_ins has 100 active
    triplets and ℓ_sem only 2, the adaptive combination still weights
    their *mean* contributions by 1 : λ, whereas joint averaging lets
    the larger pool drown the smaller one."""
    lam = 0.3
    ins = Tensor(np.full(100, 0.5))
    sem = Tensor(np.concatenate([[0.5, 0.5], np.zeros(98)]))
    adaptive_total = (aggregate_triplets(ins, "adaptive").item()
                      + lam * aggregate_triplets(sem, "adaptive").item())
    # mean active violation is 0.5 in both losses -> combination is
    # exactly (1 + lambda) * 0.5, independent of the active counts
    assert adaptive_total == pytest.approx((1 + lam) * 0.5)
    averaged_total = (aggregate_triplets(ins, "average").item()
                      + lam * aggregate_triplets(sem, "average").item())
    assert averaged_total < adaptive_total  # sem contribution crushed


def test_sgd_step_magnitude_does_not_vanish_with_inactive_triplets():
    """End-to-end mechanism check with plain SGD (no Adam rescaling):
    adding satisfied triplets leaves the adaptive update unchanged but
    shrinks the averaged update proportionally."""

    def step_norm(strategy, n_inactive):
        param = Parameter(np.linspace(-1, 1, 10))
        losses_data = np.concatenate([[1.0], np.zeros(n_inactive)])
        # per-triplet loss proportional to param -> constant gradient
        weights = Tensor(losses_data)
        # per-triplet loss w_i * mean(param^2): gradient flows to param
        per_triplet = weights * (param * param).mean()
        scalar = aggregate_triplets(per_triplet, strategy)
        optimizer = SGD([param], lr=1.0)
        before = param.data.copy()
        scalar.backward()
        optimizer.step()
        return np.linalg.norm(param.data - before)

    adaptive_small = step_norm("adaptive", 0)
    adaptive_large = step_norm("adaptive", 99)
    average_large = step_norm("average", 99)
    assert adaptive_large == pytest.approx(adaptive_small, rel=1e-9)
    assert average_large < 0.05 * adaptive_large


def test_semantic_active_count_reflects_cluster_structure():
    """Once classes are separated by more than the margin, ℓ_sem's
    active count drops to zero while ℓ_ins can still be active —
    exactly the imbalance Eq. 5 normalizes away."""
    # two tight clusters, far apart
    rng = np.random.default_rng(1)
    base = np.vstack([np.tile([1.0, 0.0, 0.0], (4, 1)),
                      np.tile([0.0, 1.0, 0.0], (4, 1))])
    img = l2_normalize(Tensor(base + 0.01 * rng.normal(size=base.shape)))
    rec = l2_normalize(Tensor(base + 0.01 * rng.normal(size=base.shape)))
    labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    sem = semantic_triplet_loss(img, rec, labels, margin=0.3)
    ins = instance_triplet_loss(img, rec, margin=0.3)
    assert sem.num_active == 0          # classes already separated
    assert ins.num_active > 0           # within-cluster pairs unresolved
