"""Unit tests for the PPM image I/O helpers."""

import numpy as np
import pytest

from repro.data import (DishRenderer, ClassTaxonomy, IngredientLexicon,
                        load_ppm, save_image_grid, save_ppm)


def test_ppm_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    image = rng.uniform(size=(3, 10, 14))
    path = tmp_path / "dish.ppm"
    save_ppm(image, path)
    restored = load_ppm(path)
    assert restored.shape == (3, 10, 14)
    # 8-bit quantization error only
    assert np.abs(restored - image).max() <= 0.5 / 255 + 1e-9


def test_ppm_clips_out_of_range(tmp_path):
    image = np.full((3, 4, 4), 2.0)
    path = tmp_path / "clipped.ppm"
    save_ppm(image, path)
    np.testing.assert_allclose(load_ppm(path), np.ones((3, 4, 4)))


def test_save_ppm_rejects_bad_shape(tmp_path):
    with pytest.raises(ValueError):
        save_ppm(np.zeros((4, 4)), tmp_path / "bad.ppm")


def test_load_ppm_rejects_non_ppm(tmp_path):
    path = tmp_path / "not.ppm"
    path.write_bytes(b"JFIF....")
    with pytest.raises(ValueError):
        load_ppm(path)


def test_load_ppm_handles_comment(tmp_path):
    path = tmp_path / "comment.ppm"
    pixels = bytes(range(12))
    path.write_bytes(b"P6\n# a comment\n2 2\n255\n" + pixels)
    image = load_ppm(path)
    assert image.shape == (3, 2, 2)


def test_grid_shape(tmp_path):
    images = np.zeros((7, 3, 8, 8))
    path = tmp_path / "grid.ppm"
    save_image_grid(images, path, columns=3, pad=1)
    sheet = load_ppm(path)
    # 3 rows x 3 cols of 8px tiles with 1px padding between
    assert sheet.shape == (3, 3 * 9 - 1, 3 * 9 - 1)


def test_grid_rejects_bad_shape(tmp_path):
    with pytest.raises(ValueError):
        save_image_grid(np.zeros((2, 8, 8)), tmp_path / "bad.ppm")


def test_rendered_dish_roundtrips(tmp_path):
    lexicon = IngredientLexicon()
    taxonomy = ClassTaxonomy(4, lexicon)
    renderer = DishRenderer(size=16)
    image = renderer.render(taxonomy[0],
                            [lexicon[n] for n in taxonomy[0].core],
                            np.random.default_rng(1))
    path = tmp_path / "pizza.ppm"
    save_ppm(image, path)
    assert np.abs(load_ppm(path) - image).max() < 0.01
