"""Edge-case tests of the autograd engine surface."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_from_tensor_shares_data(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert b.data is a.data

    def test_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.data.dtype == np.float64

    def test_from_int_array_promotes_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float64

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(3.5)
        assert t.item() == 3.5


class TestAccessors:
    def test_numpy_view(self):
        t = Tensor(np.arange(4.0))
        assert t.numpy() is t.data

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 5)))
        assert len(t) == 3
        assert t.size == 15
        assert t.ndim == 2

    def test_item_multi_element_raises(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)).item()

    def test_item_on_2d_singleton(self):
        assert Tensor(np.array([[7.0]])).item() == 7.0


class TestGradFlagInteractions:
    def test_grad_enabled_by_default(self):
        assert is_grad_enabled()

    def test_nested_no_grad_restores(self):
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_tensor_created_under_no_grad_never_requires(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad

    def test_op_between_nograd_tensors_has_no_parents(self):
        a = Tensor(np.ones(2))
        b = Tensor(np.ones(2))
        out = a + b
        assert out._parents == ()
        assert out._backward is None


class TestMixedGraphs:
    def test_grad_only_flows_to_requiring_inputs(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=False)
        (a * b).sum().backward()
        assert a.grad is not None
        assert b.grad is None

    def test_constant_scalar_leaf(self):
        loss = Tensor(0.0)
        loss.backward()  # no graph: a silent no-op on constants
        assert loss.grad is None or loss.grad is not None  # must not raise

    def test_backward_through_detach_stops(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = (a * 2.0).detach()
        (b * 3.0).sum().backward()
        assert a.grad is None

    def test_interleaved_forward_backward(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        first = (a * a).sum()
        second = (a * 3.0).sum()
        first.backward()
        second.backward()
        np.testing.assert_allclose(a.grad, [4.0 + 3.0])
