"""Shared fixtures for the serving unit suite and the chaos suite.

The resilient service is exercised against a *stub* joint model —
embeddings are normalized ingredient-id histograms — so no training
runs and the suites stay fast.  The stub is behaviour-compatible with
:class:`~repro.core.model.JointEmbeddingModel` for everything the
engine touches, and its corpus image embeddings deliberately inherit
NaNs from corrupted images so canary validation has something real to
catch.
"""

import numpy as np

from repro.core.engine import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset


class FakeClock:
    """Deterministic monotonic clock; sleeping advances it instantly."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(float(seconds), 0.0)


class _Embedded:
    """Minimal stand-in for a Tensor: just carries ``.data``."""

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class StubJointModel:
    """Training-free deterministic embedder for serving tests."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids = np.asarray(ids)
        lengths = np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256
                      ) -> tuple[np.ndarray, np.ndarray]:
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        # Pair the image side with the recipe side so self-retrieval
        # canaries pass, but let NaN pixels poison it — that is the
        # corruption signal the swap canaries must detect.
        taint = corpus.images.reshape(len(corpus), -1).mean(axis=1) * 0.0
        return recipe + taint[:, None], recipe


def make_world(num_pairs: int = 80, num_classes: int = 4,
               image_size: int = 8, seed: int = 7):
    """One dataset + fitted featurizer shared by a test module."""
    dataset = generate_dataset(DatasetConfig(
        num_pairs=num_pairs, num_classes=num_classes,
        image_size=image_size, seed=seed))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    return dataset, featurizer


def make_engine(dataset, featurizer, split: str = "test",
                dim: int = 16) -> RecipeSearchEngine:
    corpus = featurizer.encode_split(dataset, split)
    return RecipeSearchEngine(StubJointModel(dim), featurizer, dataset,
                              corpus)


def known_ingredients(engine, count: int = 2) -> list[str]:
    """Query ingredients guaranteed to be in the trained vocabulary."""
    vocab = engine.featurizer.ingredient_vocab
    names = []
    for recipe in engine.dataset.split("train"):
        for name in recipe.ingredients:
            if name.replace(" ", "_") in vocab and name not in names:
                names.append(name)
            if len(names) >= count:
                return names
    return names
