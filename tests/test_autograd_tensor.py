"""Unit tests for the autograd tensor engine (gradcheck every op)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, no_grad


def rand(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0, scale, size=shape), requires_grad=True)


class TestArithmetic:
    def test_add_gradcheck(self):
        check_gradients(lambda a, b: a + b, [rand((3, 4)), rand((3, 4), 1)])

    def test_add_broadcast_gradcheck(self):
        check_gradients(lambda a, b: a + b, [rand((3, 4)), rand((4,), 1)])

    def test_add_broadcast_column(self):
        check_gradients(lambda a, b: a + b, [rand((3, 4)), rand((3, 1), 1)])

    def test_sub_gradcheck(self):
        check_gradients(lambda a, b: a - b, [rand((2, 3)), rand((2, 3), 1)])

    def test_rsub_scalar(self):
        x = rand((3,))
        y = 1.0 - x
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, -np.ones(3))

    def test_mul_gradcheck(self):
        check_gradients(lambda a, b: a * b, [rand((3, 4)), rand((3, 4), 1)])

    def test_mul_broadcast_gradcheck(self):
        check_gradients(lambda a, b: a * b, [rand((2, 3, 4)), rand((4,), 1)])

    def test_div_gradcheck(self):
        b = rand((3, 3), 1)
        b.data += 3.0  # keep away from zero
        check_gradients(lambda a, b: a / b, [rand((3, 3)), b])

    def test_neg(self):
        check_gradients(lambda a: -a, [rand((5,))])

    def test_pow_gradcheck(self):
        a = rand((4,))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a ** 3, [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            rand((2,)) ** rand((2,))

    def test_scalar_radd_rmul(self):
        x = rand((2, 2))
        y = (2.0 + x) * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 3.0 * np.ones((2, 2)))


class TestMatmul:
    def test_matmul_2d(self):
        check_gradients(lambda a, b: a @ b, [rand((3, 4)), rand((4, 5), 1)])

    def test_matmul_vector_matrix(self):
        check_gradients(lambda a, b: a @ b, [rand((4,)), rand((4, 5), 1)])

    def test_matmul_matrix_vector(self):
        check_gradients(lambda a, b: a @ b, [rand((3, 4)), rand((4,), 1)])

    def test_matmul_dot(self):
        check_gradients(lambda a, b: a @ b, [rand((4,)), rand((4,), 1)])

    def test_matmul_values(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0], [4.0]], requires_grad=True)
        out = a @ b
        assert out.item() == pytest.approx(11.0)


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [rand((3, 4))])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0), [rand((3, 4))])

    def test_sum_keepdims(self):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [rand((3, 4))])

    def test_mean_all(self):
        check_gradients(lambda a: a.mean(), [rand((3, 4))])

    def test_mean_axis(self):
        check_gradients(lambda a: a.mean(axis=1), [rand((2, 5))])

    def test_mean_matches_numpy(self):
        x = rand((4, 6))
        np.testing.assert_allclose(x.mean(axis=1).data, x.data.mean(axis=1))

    def test_max_all(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        out = x.max(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1], [1, 0]])


class TestElementwise:
    def test_exp(self):
        check_gradients(lambda a: a.exp(), [rand((3, 3))])

    def test_log(self):
        a = rand((3, 3))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.log(), [a])

    def test_sqrt(self):
        a = rand((3, 3))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.sqrt(), [a])

    def test_tanh(self):
        check_gradients(lambda a: a.tanh(), [rand((3, 3))])

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid(), [rand((3, 3))])

    def test_relu_grad(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_clamp_min_hinge(self):
        x = Tensor(np.array([-0.3, 0.2, 0.0]), requires_grad=True)
        out = x.clamp_min(0.0)
        np.testing.assert_allclose(out.data, [0.0, 0.2, 0.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestShape:
    def test_reshape_gradcheck(self):
        check_gradients(lambda a: a.reshape(2, 6), [rand((3, 4))])

    def test_reshape_tuple_arg(self):
        x = rand((2, 6))
        assert x.reshape((3, 4)).shape == (3, 4)

    def test_transpose_default(self):
        check_gradients(lambda a: a.transpose(), [rand((3, 4))])

    def test_transpose_axes(self):
        check_gradients(lambda a: a.transpose((1, 0, 2)), [rand((2, 3, 4))])

    def test_T_property(self):
        x = rand((3, 5))
        assert x.T.shape == (5, 3)

    def test_getitem_slice(self):
        check_gradients(lambda a: a[1:3], [rand((5, 2))])

    def test_getitem_fancy_rows(self):
        idx = np.array([0, 2, 2])

        def pick(a):
            return a[idx]

        x = rand((4, 3))
        out = pick(x)
        out.sum().backward()
        # row 2 selected twice -> gradient 2
        np.testing.assert_allclose(x.grad.sum(axis=1), [3.0, 0.0, 6.0, 0.0])

    def test_getitem_2d_fancy(self):
        rows = np.array([[0], [1]])
        cols = np.array([[0, 1], [1, 0]])
        x = rand((2, 3))
        out = x[rows, cols]
        assert out.shape == (2, 2)
        out.sum().backward()
        assert x.grad.sum() == pytest.approx(4.0)


class TestBackwardSemantics:
    def test_backward_nonscalar_requires_seed(self):
        with pytest.raises(ValueError):
            rand((3,)).backward()

    def test_backward_seed_shape_checked(self):
        with pytest.raises(ValueError):
            rand((3,)).backward(np.ones((4,)))

    def test_grad_accumulates_across_backwards(self):
        x = rand((2,))
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0])

    def test_diamond_graph(self):
        # y = x*x + x*x must give dy/dx = 4x (shared subexpression)
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * x
        (a + a).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_tensor_two_paths(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y * y
        z.backward(np.ones(1))
        # z = 3x + 9x^2, dz/dx = 3 + 18x = 39
        np.testing.assert_allclose(x.grad, [39.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_zero_grad(self):
        x = rand((2,))
        (x * 1.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_graph(self):
        x = rand((2,))
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_detach(self):
        x = rand((2,))
        d = x.detach()
        assert not d.requires_grad
        np.testing.assert_allclose(d.data, x.data)

    def test_comparison_returns_numpy(self):
        x = rand((3,))
        assert isinstance(x > 0, np.ndarray)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_property_add_commutes(n, m):
    rng = np.random.default_rng(n * 10 + m)
    a = Tensor(rng.normal(size=(n, m)))
    b = Tensor(rng.normal(size=(n, m)))
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4))
def test_property_matmul_matches_numpy(n, k, m):
    rng = np.random.default_rng(n + 7 * k + 13 * m)
    a, b = rng.normal(size=(n, k)), rng.normal(size=(k, m))
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=1, max_size=8))
def test_property_sum_linear_in_inputs(values):
    x = Tensor(np.array(values), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(len(values)))
