"""End-to-end tests of the command line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data"
    code = main(["generate", "--out", str(path), "--pairs", "120",
                 "--classes", "6", "--image-size", "12", "--seed", "5"])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def run_dir(data_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "run"
    code = main(["train", "--data", str(data_dir), "--out", str(path),
                 "--scenario", "adamine", "--epochs", "3",
                 "--batch-size", "16", "--latent-dim", "16"])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x", "--pairs", "50"])
        assert args.command == "generate"
        assert args.pairs == 50

    def test_train_backbone_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--data", "d", "--out", "o", "--backbone", "vit"])


class TestGenerate:
    def test_writes_recipe1m_layout(self, data_dir):
        assert (data_dir / "layer1.json").exists()
        assert (data_dir / "classes.json").exists()
        assert (data_dir / "images.npz").exists()
        with open(data_dir / "layer1.json") as handle:
            assert len(json.load(handle)) == 120


class TestTrain:
    def test_saves_run_artifacts(self, run_dir):
        assert (run_dir / "model.npz").exists()
        assert (run_dir / "featurizer.json").exists()
        assert (run_dir / "featurizer.npz").exists()
        with open(run_dir / "run.json") as handle:
            run = json.load(handle)
        assert run["scenario"] == "adamine"
        assert np.isfinite(run["best_val_medr"])


class TestTrainCheckpointing:
    def test_checkpoint_dir_and_resume(self, data_dir, tmp_path, capsys):
        out = tmp_path / "run"
        ckpt = tmp_path / "ckpt"
        base = ["train", "--data", str(data_dir), "--out", str(out),
                "--scenario", "adamine", "--epochs", "2",
                "--batch-size", "16", "--latent-dim", "12",
                "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        capsys.readouterr()
        written = sorted(p.name for p in ckpt.iterdir()
                         if p.suffix == ".npz")
        assert written == ["checkpoint-000000.npz", "checkpoint-000001.npz"]
        # resume from the final checkpoint: schedule already complete,
        # so this is a fast no-op that still rewrites the artifacts
        assert main(base + ["--resume", str(ckpt)]) == 0
        output = capsys.readouterr().out
        assert "epoch   1" in output
        assert (out / "model.npz").exists()
    def test_prints_metrics(self, data_dir, run_dir, capsys):
        code = main(["evaluate", "--data", str(data_dir),
                     "--model", str(run_dir), "--setup", "1k"])
        assert code == 0
        output = capsys.readouterr().out
        assert "MedR" in output
        assert "im->rec" in output


class TestSearch:
    def test_returns_dishes(self, data_dir, run_dir, capsys):
        code = main(["search", "--data", str(data_dir),
                     "--model", str(run_dir),
                     "--ingredients", "butter", "--top-k", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "top 3 dishes" in output


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--data", "d", "--model", "m",
             "--ingredients", "butter"])
        assert args.command == "serve"
        assert args.deadline == 1.0
        assert args.max_inflight == 8
        assert not args.no_degraded

    def test_resilient_query_reports_outcome(self, data_dir, run_dir,
                                             capsys):
        code = main(["serve", "--data", str(data_dir),
                     "--model", str(run_dir),
                     "--ingredients", "butter", "--top-k", "3",
                     "--deadline", "30"])
        assert code == 0
        output = capsys.readouterr().out
        assert "status ok" in output
        assert "generation 0" in output
        assert "distance" in output

    def test_unknown_ingredient_is_contained(self, data_dir, run_dir,
                                             capsys):
        code = main(["serve", "--data", str(data_dir),
                     "--model", str(run_dir),
                     "--ingredients", "vibranium"])
        assert code == 1
        assert "status invalid" in capsys.readouterr().out


class TestLoadgen:
    def test_storm_reports_per_tenant_goodput(self, data_dir, run_dir,
                                              capsys):
        code = main(["loadgen", "--data", str(data_dir),
                     "--model", str(run_dir),
                     "--duration", "0.6", "--load", "mobile:15",
                     "--load", "batch:5:background",
                     "--storm", "4", "--deadline", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "loadgen: adaptive admission" in output
        assert "mobile" in output
        assert "batch" in output
        assert "goodput" in output
        assert "mode=adaptive" in output

    def test_static_flag_uses_legacy_admission(self, data_dir, run_dir,
                                               capsys):
        code = main(["loadgen", "--data", str(data_dir),
                     "--model", str(run_dir),
                     "--duration", "0.4", "--static",
                     "--deadline", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "loadgen: static admission" in output
        assert "mode=static" in output
