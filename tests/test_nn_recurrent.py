"""Unit tests for LSTM, BiLSTM and padded-sequence handling."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, check_gradients
from repro.nn import reverse_padded


RNG = lambda seed=0: np.random.default_rng(seed)


class TestLSTMCell:
    def test_shapes(self):
        cell = nn.LSTMCell(4, 6, RNG())
        h = c = Tensor(np.zeros((3, 6)))
        h2, c2 = cell(Tensor(np.zeros((3, 4))), h, c)
        assert h2.shape == (3, 6)
        assert c2.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(4, 6, RNG())
        np.testing.assert_allclose(cell.bias.data[6:12], np.ones(6))

    def test_bounded_hidden_state(self):
        cell = nn.LSTMCell(2, 3, RNG())
        h = c = Tensor(np.zeros((1, 3)))
        for __ in range(50):
            h, c = cell(Tensor(RNG(1).normal(size=(1, 2)) * 10), h, c)
        assert np.abs(h.data).max() <= 1.0 + 1e-9

    def test_gradcheck(self):
        cell = nn.LSTMCell(3, 2, RNG())
        x = Tensor(RNG(2).normal(size=(2, 3)), requires_grad=True)
        h = Tensor(RNG(3).normal(size=(2, 2)), requires_grad=True)
        c = Tensor(RNG(4).normal(size=(2, 2)), requires_grad=True)
        check_gradients(lambda x, h, c: cell(x, h, c)[0], [x, h, c],
                        atol=1e-4)


class TestLSTM:
    def test_output_shapes(self):
        lstm = nn.LSTM(4, 6, RNG())
        x = Tensor(RNG(1).normal(size=(3, 5, 4)))
        outputs, final = lstm(x, np.array([5, 3, 1]))
        assert outputs.shape == (3, 5, 6)
        assert final.shape == (3, 6)

    def test_final_state_respects_lengths(self):
        lstm = nn.LSTM(2, 3, RNG())
        x = Tensor(RNG(2).normal(size=(1, 6, 2)))
        outputs, final = lstm(x, np.array([4]))
        # final hidden must equal the output at the last valid step
        np.testing.assert_allclose(final.data, outputs.data[:, 3, :])

    def test_padding_does_not_change_final_state(self):
        lstm = nn.LSTM(2, 3, RNG())
        rng = RNG(3)
        seq = rng.normal(size=(1, 4, 2))
        padded = np.concatenate([seq, rng.normal(size=(1, 3, 2))], axis=1)
        _, final_short = lstm(Tensor(seq), np.array([4]))
        _, final_padded = lstm(Tensor(padded), np.array([4]))
        np.testing.assert_allclose(final_short.data, final_padded.data)

    def test_length_exceeding_time_raises(self):
        lstm = nn.LSTM(2, 3, RNG())
        with pytest.raises(ValueError):
            lstm(Tensor(np.zeros((1, 3, 2))), np.array([4]))

    def test_wrong_lengths_shape_raises(self):
        lstm = nn.LSTM(2, 3, RNG())
        with pytest.raises(ValueError):
            lstm(Tensor(np.zeros((2, 3, 2))), np.array([3]))

    def test_gradients_flow_to_input(self):
        lstm = nn.LSTM(2, 3, RNG())
        x = Tensor(RNG(4).normal(size=(2, 4, 2)), requires_grad=True)
        _, final = lstm(x, np.array([4, 2]))
        final.sum().backward()
        assert x.grad is not None
        # padded positions of the short sequence receive zero gradient
        np.testing.assert_allclose(x.grad[1, 2:], np.zeros((2, 2)))
        assert np.abs(x.grad[1, :2]).sum() > 0

    def test_gradcheck_small(self):
        lstm = nn.LSTM(2, 2, RNG())
        x = Tensor(RNG(5).normal(size=(2, 3, 2)), requires_grad=True)
        check_gradients(lambda x: lstm(x, np.array([3, 2]))[1], [x],
                        atol=1e-4)


class TestReversePadded:
    def test_reverses_valid_prefix(self):
        x = Tensor(np.arange(8.0).reshape(1, 4, 2))
        out = reverse_padded(x, np.array([3]))
        np.testing.assert_allclose(out.data[0, 0], [4.0, 5.0])
        np.testing.assert_allclose(out.data[0, 2], [0.0, 1.0])
        # padding stays in place
        np.testing.assert_allclose(out.data[0, 3], [6.0, 7.0])

    def test_involution_on_valid_part(self):
        rng = RNG(6)
        x = Tensor(rng.normal(size=(3, 5, 2)))
        lengths = np.array([5, 3, 1])
        twice = reverse_padded(reverse_padded(x, lengths), lengths)
        np.testing.assert_allclose(twice.data, x.data)

    def test_gradcheck(self):
        x = Tensor(RNG(7).normal(size=(2, 4, 3)), requires_grad=True)
        check_gradients(lambda x: reverse_padded(x, np.array([4, 2])), [x])


class TestBiLSTM:
    def test_output_dim(self):
        bilstm = nn.BiLSTM(4, 5, RNG())
        assert bilstm.output_dim == 10
        out = bilstm(Tensor(RNG(8).normal(size=(2, 6, 4))), np.array([6, 3]))
        assert out.shape == (2, 10)

    def test_direction_symmetry(self):
        """Swapping the two directions' weights and reversing the input
        swaps the two halves of the output."""
        bilstm = nn.BiLSTM(2, 3, RNG())
        x = Tensor(RNG(9).normal(size=(1, 4, 2)))
        lengths = np.array([4])
        out = bilstm(x, lengths).data
        swapped = nn.BiLSTM(2, 3, RNG())
        swapped.forward_lstm.load_state_dict(bilstm.backward_lstm.state_dict())
        swapped.backward_lstm.load_state_dict(bilstm.forward_lstm.state_dict())
        out_swapped = swapped(reverse_padded(x, lengths), lengths).data
        np.testing.assert_allclose(out[:, :3], out_swapped[:, 3:], atol=1e-10)
        np.testing.assert_allclose(out[:, 3:], out_swapped[:, :3], atol=1e-10)

    def test_padding_invariance(self):
        bilstm = nn.BiLSTM(2, 3, RNG())
        rng = RNG(10)
        seq = rng.normal(size=(1, 3, 2))
        padded = np.concatenate([seq, rng.normal(size=(1, 2, 2))], axis=1)
        a = bilstm(Tensor(seq), np.array([3])).data
        b = bilstm(Tensor(padded), np.array([3])).data
        np.testing.assert_allclose(a, b)

    def test_gradients_reach_all_parameters(self):
        bilstm = nn.BiLSTM(2, 2, RNG())
        x = Tensor(RNG(11).normal(size=(2, 3, 2)), requires_grad=True)
        bilstm(x, np.array([3, 2])).sum().backward()
        for param in bilstm.parameters():
            assert param.grad is not None
