"""Sharded cluster behaviour under control (tier-1, no chaos marker).

Fault-free semantics, failover mechanics driven by hand (no fault
schedules), anti-entropy repair, and the service/CLI-visible surface:
partial outcomes, ``stats()`` topology, cluster metrics in the
telemetry snapshot, and hot-swap rebuilding the whole topology.  The
chaos schedules live in ``test_cluster_chaos.py``.
"""

import numpy as np
import pytest

from ._serving_util import (FakeClock, known_ingredients, make_engine,
                            make_world)
from repro.obs import Telemetry, last_metrics_snapshot
from repro.retrieval.index import NearestNeighborIndex
from repro.serving import ResilientSearchService, ServiceConfig
from repro.serving.cluster import (REPLICA_DEAD, ClusterConfig,
                                   IndexCluster)
from repro.serving.deadline import Deadline


@pytest.fixture(scope="module")
def world():
    dataset, featurizer = make_world()
    return dataset, featurizer


def small_index(num_items=60, dim=12, seed=3, classes=3):
    rng = np.random.default_rng(seed)
    return NearestNeighborIndex(
        rng.normal(size=(num_items, dim)),
        class_ids=rng.integers(0, classes, size=num_items)), rng


class TestClusterQueries:
    def test_class_constraint_matches_monolith(self):
        index, rng = small_index()
        cluster = IndexCluster(index, ClusterConfig(num_shards=4))
        vector = rng.normal(size=12)
        for class_id in (None, 0, 1, 2):
            ids, distances = index.query(vector, k=8, class_id=class_id)
            result = cluster.query(vector, k=8, class_id=class_id)
            assert np.array_equal(ids, result.ids)
            assert distances.tobytes() == result.distances.tobytes()

    def test_k_larger_than_pool_returns_pool(self):
        index, rng = small_index(num_items=7)
        cluster = IndexCluster(index, ClusterConfig(num_shards=3))
        result = cluster.query(rng.normal(size=12), k=50)
        assert len(result.ids) == 7

    def test_missing_class_returns_empty(self):
        # A class no shard holds: every shard answers an empty pool and
        # the merge is empty — same non-strict contract as the index.
        index, rng = small_index()
        cluster = IndexCluster(index, ClusterConfig(num_shards=3))
        result = cluster.query(rng.normal(size=12), k=5, class_id=99)
        assert result.ids.shape == (0,)
        assert result.shards_answered == 3 and not result.partial

    def test_strict_pool_violation_raises(self):
        index, rng = small_index()
        cluster = IndexCluster(index, ClusterConfig(num_shards=3))
        with pytest.raises(ValueError, match="candidate pool"):
            cluster.query(rng.normal(size=12), k=999, strict=True)

    def test_bad_k_raises(self):
        index, rng = small_index()
        cluster = IndexCluster(index, ClusterConfig(num_shards=2))
        with pytest.raises(ValueError, match="k must be"):
            cluster.query(rng.normal(size=12), k=0)

    def test_expired_deadline_drops_all_shards(self):
        clock = FakeClock()
        index, rng = small_index()
        cluster = IndexCluster(index, ClusterConfig(num_shards=3),
                               clock=clock)
        deadline = Deadline(0.5, clock=clock)
        clock.sleep(1.0)  # budget already gone at fan-out time
        result = cluster.query(rng.normal(size=12), k=5,
                               deadline=deadline)
        assert result.shards_answered == 0
        assert result.ids.shape == (0,)

    def test_query_batch_matches_per_row(self):
        index, rng = small_index()
        cluster = IndexCluster(index, ClusterConfig(num_shards=4))
        vectors = rng.normal(size=(6, 12))
        batch = cluster.query_batch(vectors, k=5)
        assert batch.ids.shape == (6, 5)
        for row, vector in enumerate(vectors):
            single = cluster.query(vector, k=5)
            assert np.array_equal(batch.ids[row], single.ids)
            np.testing.assert_allclose(batch.distances[row],
                                       single.distances, atol=1e-12)


class TestFailoverAndRepair:
    def test_failover_keeps_bits_identical(self):
        index, rng = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=3, replication=2,
                                 auto_anti_entropy=False))
        for shard in range(3):
            cluster.crash_replica(shard, 0)
        vector = rng.normal(size=12)
        ids, distances = index.query(vector, k=6)
        result = cluster.query(vector, k=6)
        assert not result.partial
        assert result.failovers >= 3
        assert np.array_equal(ids, result.ids)
        assert distances.tobytes() == result.distances.tobytes()

    def test_corrupted_replica_fails_over(self):
        index, rng = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=2, replication=2,
                                 auto_anti_entropy=False))
        cluster.replica(0, 0).index.embeddings.fill(np.nan)
        vector = rng.normal(size=12)
        ids, _ = index.query(vector, k=5)
        result = cluster.query(vector, k=5)
        assert np.array_equal(ids, result.ids)
        assert result.failovers >= 1

    def test_anti_entropy_rebuilds_from_sibling(self):
        index, rng = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=3, replication=2,
                                 auto_anti_entropy=False))
        for shard in range(3):
            cluster.crash_replica(shard, 0)
        assert cluster.live_replica_count() == 3
        assert cluster.anti_entropy(force=True) == 3
        assert cluster.live_replica_count() == 6
        # Rebuilt replicas serve the same bits as the survivors.
        rebuilt = cluster.replica(0, 0).index
        donor = cluster.replica(0, 1).index
        assert (rebuilt.embeddings.tobytes()
                == donor.embeddings.tobytes())
        result = cluster.query(rng.normal(size=12), k=4)
        assert result.failovers == 0

    def test_auto_anti_entropy_heals_after_query(self):
        index, rng = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=2, replication=2))
        cluster.crash_replica(1, 0)
        cluster.query(rng.normal(size=12), k=3)
        assert cluster.live_replica_count() == 4

    def test_whole_shard_lost_is_partial_never_raises(self):
        index, rng = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=3, replication=2))
        cluster.crash_replica(1, 0)
        cluster.crash_replica(1, 1)
        for _ in range(5):
            result = cluster.query(rng.normal(size=12), k=5)
            assert result.partial
            assert result.shards_answered == 2
        # No donor: auto anti-entropy must not resurrect the shard.
        assert cluster.live_replica_count() == 4

    def test_describe_reports_topology(self):
        index, rng = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=3, replication=2),
            name="image")
        cluster.crash_replica(2, 1)
        info = cluster.describe()
        assert info["name"] == "image"
        assert info["shards"] == 3 and info["replication"] == 2
        assert info["items"] == len(index)
        assert info["live_replicas"] == 5
        assert sum(s["items"] for s in info["topology"]) == len(index)
        dead = info["topology"][2]["replicas"][1]
        assert dead["alive"] is False

    def test_replica_state_gauge_tracks_death_and_repair(self):
        index, _ = small_index()
        cluster = IndexCluster(
            index, ClusterConfig(num_shards=2, replication=2,
                                 auto_anti_entropy=False))
        child = cluster._m_replica_state.labels(
            cluster=cluster.name, shard=0, replica=0)
        assert child.value == 0
        cluster.crash_replica(0, 0)
        assert child.value == REPLICA_DEAD
        cluster.anti_entropy(force=True)
        assert child.value == 0


class TestClusteredService:
    def test_results_identical_to_monolithic_service(self, world):
        dataset, featurizer = world
        clock = FakeClock()
        mono = ResilientSearchService(
            make_engine(dataset, featurizer), ServiceConfig(),
            clock=clock, sleep=clock.sleep)
        clustered = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(shards=3, replicas=2),
            clock=clock, sleep=clock.sleep)
        ingredients = known_ingredients(mono._active.engine, 2)
        a = mono.search_by_ingredients(ingredients, k=5)
        b = clustered.search_by_ingredients(ingredients, k=5)
        assert a.outcome.status == "ok" and b.outcome.status == "ok"
        assert ([r.recipe.title for r in a.results]
                == [r.recipe.title for r in b.results])
        assert ([r.distance for r in a.results]
                == [r.distance for r in b.results])
        assert b.outcome.shards_total == 3
        assert b.outcome.shards_answered == 3
        assert a.outcome.shards_total is None  # monolithic path

    def test_partial_outcome_on_shard_loss(self, world):
        dataset, featurizer = world
        clock = FakeClock()
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(shards=3, replicas=2),
            clock=clock, sleep=clock.sleep)
        cluster = service._active.image_cluster
        cluster.crash_replica(0, 0)
        cluster.crash_replica(0, 1)
        response = service.search_by_ingredients(
            known_ingredients(service._active.engine, 2), k=5)
        assert response.outcome.status == "partial"
        assert response.ok
        assert not response.degraded
        assert response.outcome.shards_answered == 2
        assert response.outcome.shards_total == 3
        assert service.stats()["statuses"]["partial"] == 1

    def test_stats_include_cluster_topology(self, world):
        dataset, featurizer = world
        clock = FakeClock()
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(shards=2, replicas=3),
            clock=clock, sleep=clock.sleep)
        stats = service.stats()
        assert stats["cluster"]["image"]["shards"] == 2
        assert stats["cluster"]["image"]["replication"] == 3
        assert stats["cluster"]["recipe"]["live_replicas"] == 6
        # The monolithic configuration must not grow the key.
        mono = ResilientSearchService(
            make_engine(dataset, featurizer), ServiceConfig(),
            clock=clock, sleep=clock.sleep)
        assert "cluster" not in mono.stats()

    def test_hot_swap_rebuilds_cluster(self, world):
        dataset, featurizer = world
        clock = FakeClock()
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(shards=3, replicas=2),
            clock=clock, sleep=clock.sleep)
        old_cluster = service._active.image_cluster
        old_cluster.crash_replica(0, 0)
        old_cluster.crash_replica(0, 1)
        report = service.swap_corpus(service._active.engine.corpus)
        assert report.ok
        fresh = service._active.image_cluster
        assert fresh is not old_cluster
        assert fresh.live_replica_count() == 6
        response = service.search_by_ingredients(
            known_ingredients(service._active.engine, 2), k=5)
        assert response.outcome.status == "ok"
        assert response.outcome.generation == 1

    def test_cluster_metrics_reach_the_snapshot(self, world, tmp_path):
        dataset, featurizer = world
        clock = FakeClock()
        trace = tmp_path / "trace.jsonl"
        telemetry = Telemetry(jsonl_path=trace, clock=clock)
        service = ResilientSearchService(
            make_engine(dataset, featurizer),
            ServiceConfig(shards=3, replicas=2),
            clock=clock, sleep=clock.sleep, telemetry=telemetry)
        service.search_by_ingredients(
            known_ingredients(service._active.engine, 2), k=5)
        telemetry.close()
        snapshot = last_metrics_snapshot(trace)
        assert snapshot is not None
        for name in ("cluster_queries_total", "cluster_shard_seconds",
                     "cluster_replica_state", "cluster_hedges_total",
                     "cluster_failovers_total",
                     "cluster_anti_entropy_rebuilds_total",
                     "cluster_partial_results_total"):
            assert name in snapshot, name
