"""Unit tests for the paired bootstrap significance test."""

import numpy as np
import pytest

from repro.retrieval import (BootstrapComparison, compare_models,
                             paired_bootstrap)


RNG = lambda seed=0: np.random.default_rng(seed)


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        ranks_a = RNG(0).integers(1, 5, size=200)     # strong model
        ranks_b = RNG(1).integers(20, 100, size=200)  # weak model
        result = paired_bootstrap(ranks_a, ranks_b, metric="MedR",
                                  num_samples=500)
        assert result.p_value < 0.01
        assert result.significant
        assert result.value_a < result.value_b

    def test_identical_models_not_significant(self):
        ranks = RNG(2).integers(1, 50, size=100)
        result = paired_bootstrap(ranks, ranks, metric="MedR",
                                  num_samples=300)
        assert not result.significant
        assert result.p_value == 1.0

    def test_recall_metric_direction(self):
        ranks_a = np.ones(100, dtype=int)        # R@1 = 100
        ranks_b = np.full(100, 50, dtype=int)    # R@1 = 0
        result = paired_bootstrap(ranks_a, ranks_b, metric="R@1",
                                  num_samples=300)
        assert result.value_a == 100.0
        assert result.value_b == 0.0
        assert result.significant

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(5), np.ones(6))

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(5), np.ones(5), num_samples=10)

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(5), np.ones(5), metric="NDCG",
                             num_samples=100)

    def test_deterministic_under_seed(self):
        a = RNG(3).integers(1, 30, size=80)
        b = RNG(4).integers(1, 30, size=80)
        r1 = paired_bootstrap(a, b, num_samples=200, seed=7)
        r2 = paired_bootstrap(a, b, num_samples=200, seed=7)
        assert r1.p_value == r2.p_value


class TestCompareModels:
    def test_perfect_vs_random(self):
        rng = RNG(5)
        n, d = 80, 16
        base = rng.normal(size=(n, d))
        result = compare_models(base, base,                    # perfect
                                rng.normal(size=(n, d)),       # random
                                rng.normal(size=(n, d)),
                                metric="MedR", num_samples=300)
        assert result.value_a == 1.0
        assert result.significant

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            compare_models(np.zeros((4, 2)), np.zeros((4, 2)),
                           np.zeros((5, 2)), np.zeros((5, 2)))
