"""Unit tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


RNG = lambda seed=0: np.random.default_rng(seed)


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(3, 4, RNG(0))
        self.second = nn.Linear(4, 2, RNG(1))
        self.drop = nn.Dropout(0.5, RNG(2))

    def forward(self, x):
        return self.second(self.drop(self.first(x).relu()))


class TestParameterDiscovery:
    def test_named_parameters_qualified(self):
        names = {name for name, __ in TinyNet().named_parameters()}
        assert names == {"first.weight", "first.bias",
                         "second.weight", "second.bias"}

    def test_parameters_deduplicated(self):
        net = TinyNet()
        net.alias = net.first  # shared module
        assert len(net.parameters()) == 4

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_list_attribute_children_found(self):
        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = [nn.Linear(2, 2, RNG(i)) for i in range(2)]

        assert len(Holder().parameters()) == 4


class TestModes:
    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_eval_changes_dropout_behaviour(self):
        net = TinyNet()
        x = Tensor(np.ones((4, 3)))
        net.eval()
        a = net(x).data
        b = net(x).data
        np.testing.assert_allclose(a, b)  # deterministic in eval


class TestFreeze:
    def test_freeze_unfreeze(self):
        net = TinyNet()
        net.freeze()
        assert all(not p.requires_grad for p in net.parameters())
        net.unfreeze()
        assert all(p.requires_grad for p in net.parameters())

    def test_frozen_parameters_get_no_grad(self):
        net = TinyNet()
        net.eval()
        net.first.freeze()
        net(Tensor(np.ones((2, 3)))).sum().backward()
        assert net.first.weight.grad is None
        assert net.second.weight.grad is not None

    def test_zero_grad(self):
        net = TinyNet()
        net.eval()
        net(Tensor(np.ones((2, 3)))).sum().backward()
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        source, target = TinyNet(), TinyNet()
        target.load_state_dict(source.state_dict())
        for (na, pa), (nb, pb) in zip(source.named_parameters(),
                                      target.named_parameters()):
            assert na == nb
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.allclose(net.first.weight.data, 0.0)

    def test_missing_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["first.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        source, target = TinyNet(), TinyNet()
        path = tmp_path / "model.npz"
        source.save(path)
        target.load(path)
        np.testing.assert_allclose(source.first.weight.data,
                                   target.first.weight.data)


class TestInit:
    def test_xavier_bound(self):
        w = nn.init.xavier_uniform((100, 100), RNG())
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_he_normal_scale(self):
        w = nn.init.he_normal((2000, 50), RNG())
        assert w.std() == pytest.approx(np.sqrt(2.0 / 2000), rel=0.1)

    def test_orthogonal_is_orthogonal(self):
        w = nn.init.orthogonal((6, 6), RNG())
        np.testing.assert_allclose(w @ w.T, np.eye(6), atol=1e-10)

    def test_orthogonal_rectangular(self):
        w = nn.init.orthogonal((4, 8), RNG())
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_conv_fans(self):
        w = nn.init.he_normal((8, 4, 3, 3), RNG())
        assert w.shape == (8, 4, 3, 3)
