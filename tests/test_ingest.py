"""Streaming-ingest tier-1 tests.

Covers the WAL (framing, batched fsync, rotation/checkpoint GC,
torn-tail truncation vs sealed-segment corruption, rollback on failed
appends), the op codec's bitwise round trip, the delta overlay's
add/delete/upsert semantics, the index append/mask satellites, the
ingestor's crash recovery and compaction protocol, cluster delta
mirroring — and the hypothesis property pinning the overlay's
base ∪ delta merge bitwise-identical to a monolithic rebuild.

The kill -9 / crash-mid-compaction / racing-query chaos schedules
live in ``test_ingest_chaos.py`` behind the ``ingest`` marker.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.distance import normalize_rows
from repro.retrieval.index import NearestNeighborIndex
from repro.robustness import DiskFullOnAppend
from repro.serving import (ClusterConfig, DeltaLog, DeltaOverlay,
                           IndexCluster, IngestConfig, IngestError,
                           Ingestor, WalCorruption, WalWriteError)
from repro.serving.ingest import IngestOp, decode_op, encode_op, scan_log
from repro.serving.wal import encode_record, read_manifest

RNG = lambda seed=0: np.random.default_rng(seed)


def _unit_rows(rng, n, dim):
    return normalize_rows(rng.normal(size=(n, dim)))


def _base_index(n=10, dim=6, seed=0, classes=True) -> NearestNeighborIndex:
    rng = RNG(seed)
    return NearestNeighborIndex(
        rng.normal(size=(n, dim)), ids=np.arange(n),
        class_ids=rng.integers(0, 3, n) if classes else None)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_append_replay_roundtrip(self, tmp_path):
        log = DeltaLog(tmp_path)
        payloads = [b"alpha", b"", b"\x00" * 100, b"tail"]
        positions = [log.append(p) for p in payloads]
        assert [p.record for p in positions] == [0, 1, 2, 3]
        assert positions[0].offset == 0
        assert positions[1].offset == len(encode_record(b"alpha"))
        assert list(log.replay()) == payloads
        log.close()
        reopened = DeltaLog(tmp_path)
        assert list(reopened.replay()) == payloads
        assert reopened.recovery.records == len(payloads)
        assert reopened.recovery.truncated_bytes == 0
        reopened.close()

    def test_batched_fsync_policy(self, tmp_path):
        log = DeltaLog(tmp_path, fsync_every=3)
        log.append(b"one")
        log.append(b"two")
        assert not log.synced
        assert log.syncs == 0
        log.append(b"three")  # third append flushes the batch
        assert log.synced
        assert log.syncs == 1
        log.append(b"four", sync=True)  # explicit override
        assert log.synced
        log.close()

    def test_fsync_every_validates(self, tmp_path):
        with pytest.raises(ValueError):
            DeltaLog(tmp_path, fsync_every=0)

    def test_rotate_and_checkpoint_gc(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(b"old-1")
        log.append(b"old-2")
        assert log.rotate() == 1
        log.append(b"new-1")
        log.checkpoint({"epoch": 1}, segment=1)
        assert not (tmp_path / "wal-000000.log").exists()
        assert list(log.replay()) == [b"new-1"]
        assert log.lag_records == 1
        assert read_manifest(tmp_path)["segment"] == 1
        log.close()
        reopened = DeltaLog(tmp_path)
        assert list(reopened.replay()) == [b"new-1"]
        assert reopened.manifest["meta"] == {"epoch": 1}
        reopened.close()

    def test_torn_tail_truncated_on_final_segment(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(b"kept-1")
        log.append(b"kept-2")
        log.close()
        path = tmp_path / "wal-000000.log"
        clean_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_record(b"torn-record")[:-4])
        reopened = DeltaLog(tmp_path)
        assert list(reopened.replay()) == [b"kept-1", b"kept-2"]
        assert reopened.recovery.truncated_segment == 0
        assert reopened.recovery.truncated_bytes > 0
        assert path.stat().st_size == clean_size
        # the log is clean again: appends land after the repair point
        reopened.append(b"after")
        assert list(reopened.replay()) == [b"kept-1", b"kept-2", b"after"]
        reopened.close()

    def test_crc_damage_on_tail_is_truncated(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(b"kept")
        position = log.append(b"flipped")
        log.close()
        path = tmp_path / "wal-000000.log"
        data = bytearray(path.read_bytes())
        data[position.offset + 8] ^= 0xFF  # first payload byte
        path.write_bytes(bytes(data))
        reopened = DeltaLog(tmp_path)
        assert list(reopened.replay()) == [b"kept"]
        assert reopened.recovery.truncated_bytes > 0
        reopened.close()

    def test_sealed_segment_damage_raises(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.append(b"sealed-record")
        log.rotate()
        log.append(b"live-record")
        log.close()
        path = tmp_path / "wal-000000.log"
        data = bytearray(path.read_bytes())
        data[8] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruption, match="sealed segment"):
            DeltaLog(tmp_path)

    def test_segment_hole_raises(self, tmp_path):
        log = DeltaLog(tmp_path)
        log.rotate()
        log.rotate()
        log.close()
        (tmp_path / "wal-000001.log").unlink()
        with pytest.raises(WalCorruption, match="holes"):
            DeltaLog(tmp_path)

    def test_failed_append_rolls_back(self, tmp_path):
        fault = DiskFullOnAppend(records={1})
        log = DeltaLog(tmp_path, fault=fault)
        log.append(b"first")
        size_before = (tmp_path / "wal-000000.log").stat().st_size
        with pytest.raises(WalWriteError, match="rolled back"):
            log.append(b"lost-to-enospc")
        assert fault.fired == [1]
        # no residue: the segment is byte-identical to before the fault
        assert (tmp_path / "wal-000000.log").stat().st_size == size_before
        fault.records.clear()  # "disk" has space again
        log.append(b"second")
        assert list(log.replay()) == [b"first", b"second"]
        log.close()


# ----------------------------------------------------------------------
# Op codec
# ----------------------------------------------------------------------
class TestOpCodec:
    def test_add_roundtrip_is_bitwise(self):
        rng = RNG(3)
        vectors = {"image": _unit_rows(rng, 1, 8)[0],
                   "recipe": _unit_rows(rng, 1, 8)[0]}
        payload = {"title": "pan seared tofu", "ingredients": ["tofu"]}
        op = IngestOp("add", 41, 2, vectors, payload)
        decoded = decode_op(encode_op(op))
        assert decoded.kind == "add"
        assert decoded.item_id == 41
        assert decoded.class_id == 2
        assert sorted(decoded.vectors) == ["image", "recipe"]
        for name in vectors:
            assert decoded.vectors[name].dtype == np.float64
            assert (decoded.vectors[name].tobytes()
                    == vectors[name].tobytes())
        assert decoded.payload == payload

    def test_add_without_payload(self):
        op = IngestOp("add", 7, -1, {"vec": np.zeros(4)}, None)
        assert decode_op(encode_op(op)).payload is None

    def test_delete_roundtrip(self):
        decoded = decode_op(encode_op(IngestOp("delete", 99)))
        assert decoded.kind == "delete"
        assert decoded.item_id == 99
        assert decoded.vectors is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(IngestError, match="unknown op kind"):
            encode_op(IngestOp("upsert", 1))

    def test_add_requires_vectors(self):
        with pytest.raises(IngestError, match="no vectors"):
            encode_op(IngestOp("add", 1))


# ----------------------------------------------------------------------
# Index satellites: verbatim append / masked queries
# ----------------------------------------------------------------------
class TestIndexSatellites:
    def test_append_rows_is_verbatim(self):
        base = _base_index(n=8, dim=5, seed=1)
        extra = _unit_rows(RNG(2), 3, 5)
        grown = base.append_rows(extra, np.array([20, 21, 22]),
                                 np.array([0, 1, 2]))
        assert len(grown) == 11
        assert grown.embeddings[:8].tobytes() == base.embeddings.tobytes()
        assert grown.embeddings[8:].tobytes() == extra.tobytes()
        assert list(grown.ids[8:]) == [20, 21, 22]
        # the original is untouched
        assert len(base) == 8

    def test_append_rows_validates_shapes(self):
        base = _base_index(n=4, dim=5, seed=1)
        with pytest.raises(ValueError):
            base.append_rows(_unit_rows(RNG(0), 2, 7),
                             np.array([10, 11]), np.array([0, 0]))
        with pytest.raises(ValueError):
            base.append_rows(_unit_rows(RNG(0), 2, 5),
                             np.array([10]), np.array([0]))

    def test_append_rows_class_discipline(self):
        with_classes = _base_index(n=4, dim=5, seed=1, classes=True)
        without = _base_index(n=4, dim=5, seed=1, classes=False)
        rows = _unit_rows(RNG(0), 1, 5)
        with pytest.raises(ValueError):
            with_classes.append_rows(rows, np.array([10]))  # missing
        with pytest.raises(ValueError):
            without.append_rows(rows, np.array([10]),
                                np.array([2]))  # spurious

    def test_from_normalized_adopts_verbatim(self):
        rows = _unit_rows(RNG(5), 6, 4)
        index = NearestNeighborIndex.from_normalized(
            rows, np.arange(6), np.zeros(6, dtype=np.int64))
        assert index.embeddings.tobytes() == rows.tobytes()

    def test_masked_query_excludes_rows(self):
        base = _base_index(n=10, dim=6, seed=4)
        query = RNG(9).normal(size=6)
        ids, _ = base.query(query, k=3)
        mask = np.ones(10, dtype=bool)
        mask[int(ids[0])] = False  # ids are positions 0..9 here
        masked_ids, _ = base.query(query, k=3, mask=mask)
        assert int(ids[0]) not in [int(i) for i in masked_ids]

    def test_mask_length_validated(self):
        base = _base_index(n=10, dim=6, seed=4)
        with pytest.raises(ValueError):
            base.query(np.zeros(6), k=2, mask=np.ones(9, dtype=bool))

    def test_query_positions_aligns_with_query(self):
        base = _base_index(n=10, dim=6, seed=4)
        query = RNG(10).normal(size=6)
        positions, distances = base.query_positions(query, k=4)
        ids, distances2 = base.query(query, k=4)
        assert np.array_equal(base.ids[positions], ids)
        assert distances.tobytes() == distances2.tobytes()


# ----------------------------------------------------------------------
# Delta overlay
# ----------------------------------------------------------------------
class TestDeltaOverlay:
    def test_add_delete_upsert_bookkeeping(self):
        overlay = DeltaOverlay(_base_index(n=6, dim=4, seed=2))
        row = _unit_rows(RNG(1), 3, 4)
        assert overlay.live_count == 6
        assert overlay.add(100, row[0], 1) is None
        assert overlay.live_count == 7
        assert overlay.delta_rows == 1
        assert overlay.is_live(100)
        assert overlay.key_for(100) == 6
        # upsert moves the item to a fresh slot, tombstoning the old
        assert overlay.add(100, row[1], 2) == 6
        assert overlay.key_for(100) == 7
        assert overlay.delta_rows == 1
        assert overlay.tombstones == 1
        # delete a base row, then the upserted item
        assert overlay.delete(3) == 3
        assert overlay.delete(100) == 7
        assert not overlay.is_live(100)
        assert overlay.live_count == 5
        assert overlay.tombstones == 3
        with pytest.raises(KeyError, match="not live"):
            overlay.delete(100)

    def test_upsert_of_base_item(self):
        base = _base_index(n=6, dim=4, seed=2)
        overlay = DeltaOverlay(base)
        row = _unit_rows(RNG(2), 1, 4)[0]
        assert overlay.add(2, row, 0) == 2  # base position tombstoned
        assert overlay.key_for(2) == 6
        assert overlay.live_count == 6
        assert overlay.dead_base_items() == [(2, 2)]

    def test_duplicate_base_ids_rejected(self):
        rows = RNG(0).normal(size=(4, 3))
        index = NearestNeighborIndex(rows, ids=np.array([1, 1, 2, 3]))
        with pytest.raises(IngestError, match="unique"):
            DeltaOverlay(index)

    def test_query_finds_added_row_first(self):
        overlay = DeltaOverlay(_base_index(n=20, dim=8, seed=3))
        row = _unit_rows(RNG(4), 1, 8)[0]
        overlay.add(500, row, 1)
        ids, distances = overlay.query(row, k=3)
        assert int(ids[0]) == 500
        assert distances[0] == pytest.approx(0.0, abs=1e-12)

    def test_class_filter_covers_both_sides(self):
        base = _base_index(n=12, dim=6, seed=5)
        overlay = DeltaOverlay(base)
        row = _unit_rows(RNG(6), 1, 6)[0]
        overlay.add(300, row, 2)
        ids, _ = overlay.query(row, k=50, class_id=2)
        members = set(int(i) for i in ids)
        expected = set(
            int(base.ids[p])
            for p in np.flatnonzero(base.class_ids == 2)) | {300}
        assert members == expected

    def test_grow_preserves_rows(self):
        overlay = DeltaOverlay(_base_index(n=4, dim=4, seed=6))
        rows = _unit_rows(RNG(7), 40, 4)  # force several _grow cycles
        for i in range(40):
            overlay.add(100 + i, rows[i], 0)
        assert overlay.delta_rows == 40
        for i in range(40):
            key = overlay.key_for(100 + i)
            assert overlay.row_for_key(key).tobytes() == rows[i].tobytes()

    def test_fold_is_verbatim(self):
        base = _base_index(n=8, dim=5, seed=7)
        overlay = DeltaOverlay(base)
        rows = _unit_rows(RNG(8), 2, 5)
        overlay.add(50, rows[0], 1)
        overlay.add(51, rows[1], 2)
        overlay.delete(0)
        overlay.delete(51)
        folded = overlay.fold()
        survivors = np.arange(1, 8)
        assert (folded.embeddings.tobytes()
                == (np.concatenate([base.embeddings[survivors],
                                    rows[:1]])).tobytes())
        assert list(folded.ids) == [*range(1, 8), 50]
        assert list(folded.class_ids[-1:]) == [1]

    def test_delta_entries_enumerates_live_slots(self):
        overlay = DeltaOverlay(_base_index(n=4, dim=4, seed=9))
        rows = _unit_rows(RNG(9), 2, 4)
        overlay.add(70, rows[0], 1)
        overlay.add(71, rows[1], 2)
        overlay.delete(70)
        entries = list(overlay.delta_entries())
        assert len(entries) == 1
        item_id, row, class_id, key = entries[0]
        assert (item_id, class_id, key) == (71, 2, 5)
        assert row.tobytes() == rows[1].tobytes()


# ----------------------------------------------------------------------
# Property: overlay merge == monolithic rebuild, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_ops=st.integers(0, 40),
       class_query=st.booleans())
def test_overlay_matches_monolithic_rebuild(seed, num_ops, class_query):
    """Arbitrary add/delete/upsert interleavings: the overlay's merged
    top-k and its fold are bitwise identical to an index rebuilt from
    the effective corpus (live base rows in order, then live delta
    rows in slot order)."""
    rng = RNG(seed)
    dim = 12
    base = NearestNeighborIndex(rng.normal(size=(30, dim)),
                                ids=np.arange(30),
                                class_ids=rng.integers(0, 3, 30))
    overlay = DeltaOverlay(base)
    effective = [(i, base.embeddings[i], int(base.class_ids[i]))
                 for i in range(30)]
    next_id = 30
    for _ in range(num_ops):
        roll = rng.random()
        live = [item for item, _, _ in effective]
        if roll < 0.55 or not live:
            if roll < 0.15 and live:
                item = int(live[rng.integers(len(live))])  # upsert
            else:
                item = next_id
                next_id += 1
            row = normalize_rows(rng.normal(size=(1, dim)))[0]
            class_id = int(rng.integers(0, 3))
            overlay.add(item, row, class_id)
            effective = [e for e in effective if e[0] != item]
            effective.append((item, row, class_id))
        else:
            item = int(live[rng.integers(len(live))])
            overlay.delete(item)
            effective = [e for e in effective if e[0] != item]

    query = rng.normal(size=dim)
    class_id = int(rng.integers(0, 3)) if class_query else None
    if not effective:
        ids, distances = overlay.query(query, k=5, class_id=class_id)
        assert len(ids) == 0 and len(distances) == 0
        return
    mono = NearestNeighborIndex.from_normalized(
        np.array([row for _, row, _ in effective]),
        np.array([item for item, _, _ in effective], dtype=np.int64),
        np.array([c for _, _, c in effective], dtype=np.int64))
    for k in (1, 5, len(effective) + 3):
        o_ids, o_distances = overlay.query(query, k=k, class_id=class_id)
        m_ids, m_distances = mono.query(query, k=k, class_id=class_id)
        assert np.array_equal(o_ids, m_ids)
        assert o_distances.tobytes() == m_distances.tobytes()
    folded = overlay.fold()
    assert folded.embeddings.tobytes() == mono.embeddings.tobytes()
    assert np.array_equal(folded.ids, mono.ids)
    assert np.array_equal(folded.class_ids, mono.class_ids)


# ----------------------------------------------------------------------
# Ingestor: durability, recovery, compaction
# ----------------------------------------------------------------------
def _bases(seed=0, n=20, dim=8):
    rng = RNG(seed)
    classes = rng.integers(0, 3, n)
    return {"image": NearestNeighborIndex(rng.normal(size=(n, dim)),
                                          ids=np.arange(n),
                                          class_ids=classes),
            "recipe": NearestNeighborIndex(rng.normal(size=(n, dim)),
                                           ids=np.arange(n),
                                           class_ids=classes)}


def _vectors(rng, dim=8):
    return {"image": rng.normal(size=dim), "recipe": rng.normal(size=dim)}


class TestIngestor:
    def test_ack_shape_and_auto_ids(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(1)
        ack = ingestor.add(_vectors(rng), class_id=1,
                           payload={"title": "soup"})
        assert ack.item_id == 20  # 1 + max base id
        assert ack.epoch == 0
        assert ack.durable and not ack.replaced
        assert ack.key == 20
        again = ingestor.add(_vectors(rng), item_id=20, class_id=2)
        assert again.replaced and again.replaced_key == 20
        assert ingestor.next_id == 21
        assert ingestor.payloads == {}  # upsert without payload pops it
        ingestor.close()

    def test_validation_errors(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        with pytest.raises(IngestError, match="cover exactly"):
            ingestor.add({"image": np.zeros(8)})
        with pytest.raises(IngestError, match="dim"):
            ingestor.add({"image": np.zeros(5), "recipe": np.zeros(8)})
        with pytest.raises(IngestError, match="non-finite"):
            ingestor.add({"image": np.full(8, np.inf),
                          "recipe": np.zeros(8)})
        with pytest.raises(KeyError):
            ingestor.delete(999)
        assert ingestor.log.lag_records == 0  # nothing bad was logged
        ingestor.close()

    def test_recovery_is_bitwise_identical(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(2)
        for _ in range(8):
            ingestor.add(_vectors(rng), class_id=int(rng.integers(0, 3)))
        ingestor.delete(21)
        ingestor.delete(5)
        ingestor.add(_vectors(rng), item_id=23)  # upsert
        query = rng.normal(size=8)
        before = {name: overlay.query(query, k=10)
                  for name, overlay in ingestor.overlays.items()}
        next_id = ingestor.next_id
        ingestor.close()

        reopened = Ingestor(tmp_path, _bases())
        assert reopened.recovery["replayed_records"] == 11
        assert reopened.next_id == next_id
        for name, (ids, distances) in before.items():
            r_ids, r_distances = reopened.overlays[name].query(query, k=10)
            assert np.array_equal(ids, r_ids)
            assert distances.tobytes() == r_distances.tobytes()
        reopened.close()

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        Ingestor(tmp_path, _bases(n=20)).close()
        with pytest.raises(IngestError, match="different base corpus"):
            Ingestor(tmp_path, _bases(n=21))

    def test_compaction_roundtrip(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(3)
        for _ in range(5):
            ingestor.add(_vectors(rng))
        ingestor.delete(22)
        ingestor.delete(0)
        query = rng.normal(size=8)
        before = ingestor.overlays["image"].query(query, k=8)
        report = ingestor.compact()
        assert report.epoch == 1
        assert report.live_items == 23
        assert report.base_file == "base-000001.npz"
        assert (tmp_path / report.base_file).exists()
        assert ingestor.log.lag_records == 0
        after = ingestor.overlays["image"].query(query, k=8)
        assert np.array_equal(before[0], after[0])
        assert before[1].tobytes() == after[1].tobytes()
        ingestor.close()
        # reopen loads the folded snapshot; external base is only a
        # compatibility check now
        reopened = Ingestor(tmp_path, _bases())
        assert reopened.epoch == 1
        assert reopened.recovery["base"] == "base-000001.npz"
        assert reopened.recovery["replayed_records"] == 0
        recovered = reopened.overlays["image"].query(query, k=8)
        assert np.array_equal(before[0], recovered[0])
        assert before[1].tobytes() == recovered[1].tobytes()
        reopened.close()

    def test_payloads_survive_compaction_and_recovery(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(4)
        ack = ingestor.add(_vectors(rng), payload={"title": "stew"})
        ingestor.compact()
        assert ingestor.payloads[ack.item_id] == {"title": "stew"}
        ingestor.close()
        reopened = Ingestor(tmp_path, _bases())
        assert reopened.payloads[ack.item_id] == {"title": "stew"}
        reopened.close()

    def test_writes_racing_compaction_replay_on_commit(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(5)
        ingestor.add(_vectors(rng))
        ticket = ingestor.begin_compaction()
        racing = ingestor.add(_vectors(rng))  # lands after the seal
        report, replayed = ingestor.commit_compaction(ticket)
        assert report.pending_replayed == 1
        assert [op.item_id for op, _, _ in replayed] == [racing.item_id]
        assert ingestor.overlays["image"].is_live(racing.item_id)
        # the racing write is in the log, not the snapshot: a reopen
        # must replay exactly it
        ingestor.close()
        reopened = Ingestor(tmp_path, _bases())
        assert reopened.recovery["replayed_records"] == 1
        assert reopened.overlays["image"].is_live(racing.item_id)
        reopened.close()

    def test_stale_base_files_cleaned_at_open(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        ingestor.add(_vectors(RNG(6)))
        ingestor.compact()
        ingestor.close()
        stray = tmp_path / "base-000099.npz"
        stray.write_bytes(b"leftover from a crashed compaction")
        tmp = tmp_path / "base-000100.npz.tmp"
        tmp.write_bytes(b"half-written snapshot")
        reopened = Ingestor(tmp_path, _bases())
        assert not stray.exists()
        assert not tmp.exists()
        assert (tmp_path / "base-000001.npz").exists()
        reopened.close()

    def test_scan_log_is_read_only(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(7)
        ack = ingestor.add(_vectors(rng))
        ingestor.add(_vectors(rng))
        ingestor.delete(ack.item_id)
        ingestor.close()
        summary = scan_log(tmp_path)
        assert summary["records"] == 3
        assert summary["adds"] == 2
        assert summary["deletes"] == 1
        assert summary["epoch"] == 0
        assert summary["base"] == "external"

    def test_metrics_exported(self, tmp_path):
        ingestor = Ingestor(tmp_path, _bases())
        rng = RNG(8)
        ingestor.add(_vectors(rng))
        registry = ingestor.telemetry.registry
        counters = {key: child.value for key, child
                    in registry.get("ingest_ops_total").children()}
        assert counters[("add",)] == 1
        gauges = {key: child.value for key, child
                  in registry.get("ingest_delta_rows").children()}
        assert gauges[("image",)] == 1
        assert registry.get("ingest_epoch").labels().value == 0
        ingestor.close()


# ----------------------------------------------------------------------
# Cluster delta mirroring
# ----------------------------------------------------------------------
class TestClusterDeltas:
    def _twins(self, seed=0, n=16, dim=6, shards=3):
        base = NearestNeighborIndex(
            RNG(seed).normal(size=(n, dim)), ids=np.arange(n),
            class_ids=RNG(seed + 1).integers(0, 3, n))
        overlay = DeltaOverlay(base)
        cluster = IndexCluster(base, ClusterConfig(num_shards=shards,
                                                   replication=2,
                                                   parallel=False))
        return base, overlay, cluster

    def _mirror(self, overlay, cluster, op, *args):
        if op == "add":
            item_id, row, class_id = args
            replaced = overlay.add(item_id, row, class_id)
            if replaced is not None:
                cluster.apply_delete(item_id, replaced)
            cluster.apply_add(item_id, row, class_id,
                              overlay.key_for(item_id))
        else:
            (item_id,) = args
            key = overlay.delete(item_id)
            cluster.apply_delete(item_id, key)

    def test_cluster_tracks_overlay_bitwise(self):
        base, overlay, cluster = self._twins()
        rng = RNG(11)
        rows = _unit_rows(rng, 8, 6)
        for i in range(6):
            self._mirror(overlay, cluster, "add", 100 + i, rows[i],
                         int(rng.integers(0, 3)))
        self._mirror(overlay, cluster, "delete", 102)
        self._mirror(overlay, cluster, "delete", 3)
        self._mirror(overlay, cluster, "add", 104, rows[6], 1)  # upsert
        assert cluster.live_item_count() == overlay.live_count
        for class_id in (None, 0, 1, 2):
            for k in (1, 4, 30):
                query = rng.normal(size=6)
                o_ids, o_distances = overlay.query(query, k=k,
                                                   class_id=class_id)
                result = cluster.query(query, k=k, class_id=class_id)
                assert np.array_equal(o_ids, result.ids)
                assert o_distances.tobytes() == result.distances.tobytes()

    def test_apply_add_rejects_live_position(self):
        _, overlay, cluster = self._twins()
        row = _unit_rows(RNG(12), 1, 6)[0]
        self._mirror(overlay, cluster, "add", 50, row, 0)
        with pytest.raises(ValueError, match="already live"):
            cluster.apply_add(51, row, 0, overlay.key_for(50))

    def test_apply_delete_validates(self):
        _, overlay, cluster = self._twins()
        with pytest.raises(ValueError, match="not live"):
            cluster.apply_delete(0, 99)
        with pytest.raises(ValueError, match="holds item"):
            cluster.apply_delete(7, 3)  # position 3 holds item 3

    def test_boot_replay_with_gaps(self):
        """Recovered overlays can contain dead slots; apply_add must
        gap-fill positions so the cluster's arrays stay aligned."""
        base, overlay, cluster = self._twins()
        rng = RNG(13)
        rows = _unit_rows(rng, 3, 6)
        overlay.add(200, rows[0], 0)
        overlay.add(201, rows[1], 1)
        overlay.delete(200)          # slot 0 of the delta block dies
        overlay.add(202, rows[2], 2)
        for item_id, key in overlay.dead_base_items():
            cluster.apply_delete(item_id, key)
        for item_id, row, class_id, key in overlay.delta_entries():
            cluster.apply_add(item_id, row, class_id, key)
        assert cluster.live_item_count() == overlay.live_count
        query = rng.normal(size=6)
        o_ids, o_distances = overlay.query(query, k=20)
        result = cluster.query(query, k=20)
        assert np.array_equal(o_ids, result.ids)
        assert o_distances.tobytes() == result.distances.tobytes()
