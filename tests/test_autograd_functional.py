"""Unit tests for composite differentiable functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    cosine_similarity,
    cosine_similarity_matrix,
    cross_entropy,
    dot_rows,
    l2_normalize,
    log_softmax,
    maximum,
    pairwise_cosine_distance,
    softmax,
    stack,
    where,
)


def rand(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestConcatStack:
    def test_concat_values(self):
        a, b = rand((2, 3)), rand((2, 2), 1)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data[:, :3], a.data)

    def test_concat_gradcheck(self):
        check_gradients(lambda a, b: concat([a, b], axis=-1),
                        [rand((2, 3)), rand((2, 4), 1)])

    def test_concat_axis0_gradcheck(self):
        check_gradients(lambda a, b: concat([a, b], axis=0),
                        [rand((2, 3)), rand((4, 3), 1)])

    def test_stack_values(self):
        a, b = rand((3,)), rand((3,), 1)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_stack_gradcheck(self):
        check_gradients(lambda a, b: stack([a, b], axis=1),
                        [rand((2, 3)), rand((2, 3), 1)])


class TestMaxWhere:
    def test_maximum_gradcheck(self):
        check_gradients(lambda a, b: maximum(a, b),
                        [rand((3, 3)), rand((3, 3), 1)])

    def test_maximum_values(self):
        out = maximum(Tensor([1.0, 5.0]), Tensor([2.0, 3.0]))
        np.testing.assert_allclose(out.data, [2.0, 5.0])

    def test_where_selects(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_where_gradcheck(self):
        cond = np.array([[True, False, True]])
        check_gradients(lambda a, b: where(cond, a, b),
                        [rand((2, 3)), rand((2, 3), 1)])

    def test_where_broadcast_condition(self):
        cond = np.array([[True], [False]])
        a, b = rand((2, 3)), rand((2, 3), 1)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data[0], a.data[0])
        np.testing.assert_allclose(out.data[1], b.data[1])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        out = softmax(rand((4, 7)))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_stable_for_large_logits(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_softmax_gradcheck(self):
        check_gradients(lambda a: softmax(a), [rand((3, 4))], atol=1e-4)

    def test_log_softmax_matches_log_of_softmax(self):
        x = rand((3, 5))
        np.testing.assert_allclose(log_softmax(x).data,
                                   np.log(softmax(x).data), atol=1e-10)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]),
                        requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)), requires_grad=True)
        loss = cross_entropy(logits, np.array([1, 2]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_cross_entropy_gradcheck(self):
        targets = np.array([0, 2, 1])
        check_gradients(lambda a: cross_entropy(a, targets),
                        [rand((3, 4))], atol=1e-4)

    def test_cross_entropy_ignore_index(self):
        logits = rand((3, 4))
        full = cross_entropy(logits, np.array([0, -1, 1]), ignore_index=-1)
        manual = cross_entropy(rand((3, 4)), np.array([0, 1]))
        assert np.isfinite(full.item())
        assert np.isfinite(manual.item())

    def test_cross_entropy_all_ignored_is_zero(self):
        logits = rand((2, 3))
        loss = cross_entropy(logits, np.array([-1, -1]), ignore_index=-1)
        assert loss.item() == 0.0


class TestCosine:
    def test_l2_normalize_unit_norm(self):
        out = l2_normalize(rand((5, 8)))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1),
                                   np.ones(5))

    def test_l2_normalize_gradcheck(self):
        check_gradients(lambda a: l2_normalize(a), [rand((3, 4))], atol=1e-4)

    def test_dot_rows(self):
        a, b = rand((4, 3)), rand((4, 3), 1)
        np.testing.assert_allclose(dot_rows(a, b).data,
                                   (a.data * b.data).sum(axis=1))

    def test_cosine_similarity_self_is_one(self):
        x = rand((4, 6))
        np.testing.assert_allclose(cosine_similarity(x, x).data, np.ones(4))

    def test_cosine_similarity_range(self):
        sims = cosine_similarity_matrix(rand((10, 5)), rand((8, 5), 1)).data
        assert sims.shape == (10, 8)
        assert (sims <= 1 + 1e-9).all() and (sims >= -1 - 1e-9).all()

    def test_pairwise_cosine_distance_zero_diagonal(self):
        x = rand((6, 4))
        dist = pairwise_cosine_distance(x, x).data
        np.testing.assert_allclose(np.diag(dist), np.zeros(6), atol=1e-10)

    def test_pairwise_distance_gradcheck(self):
        check_gradients(lambda a, b: pairwise_cosine_distance(a, b),
                        [rand((3, 4)), rand((2, 4), 1)], atol=1e-4)

    def test_cosine_scale_invariance(self):
        a, b = rand((3, 5)), rand((3, 5), 1)
        base = cosine_similarity(a, b).data
        scaled = cosine_similarity(Tensor(a.data * 7.0), b).data
        np.testing.assert_allclose(base, scaled, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=6))
def test_property_softmax_invariant_to_shift(n, d):
    rng = np.random.default_rng(n * 7 + d)
    logits = rng.normal(size=(n, d))
    a = softmax(Tensor(logits)).data
    b = softmax(Tensor(logits + 100.0)).data
    np.testing.assert_allclose(a, b, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_property_cosine_distance_symmetric(n):
    rng = np.random.default_rng(n)
    x = Tensor(rng.normal(size=(n, 4)))
    dist = pairwise_cosine_distance(x, x).data
    np.testing.assert_allclose(dist, dist.T, atol=1e-10)
