"""Quality-SLO chaos scenarios (opt-in, ``pytest -m slo``).

These exercise the full incident loop that ISSUE acceptance demands:

* A **stale swap** — the service hot-swaps to the wrong split's corpus.
  Canary queries pass (the swapped corpus is self-consistent) and
  latency SLOs stay green, but the golden probe's online MedR explodes
  past its ceiling, the burn-rate alert fires, and the flight recorder
  writes a bundle with spans, metrics, and drift sketches.
* An **embedding-scale fault** — query vectors are silently scaled, so
  retrieval distances barely move (the index normalizes) but the
  norm-drift score breaches its ceiling.
* The sanity anchor: on an unfaulted service the probe's *online*
  metrics equal the *offline* ``RetrievalMetrics`` on the same golden
  bag.
"""

import json

import numpy as np
import pytest

from repro.obs import (AlertManager, BurnRateWindow, DriftMonitor,
                       DriftReference, FlightRecorder, GoldenProbe,
                       GoldenSet, Telemetry, default_serving_slos)
from repro.robustness.faults import ServingFault
from repro.serving import ResilientSearchService, ServiceConfig

from ._serving_util import FakeClock, make_engine, make_world

pytestmark = pytest.mark.slo

# Short windows sized for a fake clock ticking in seconds.
FAST_WINDOWS = (BurnRateWindow("page", short_s=60.0, long_s=300.0,
                               factor=2.0),)


def _service(engine, clock, *, faults=None):
    telemetry = Telemetry(clock=clock)
    service = ResilientSearchService(
        engine, ServiceConfig(deadline=5.0), clock=clock,
        sleep=clock.sleep, faults=faults, telemetry=telemetry)
    return service, telemetry


def _drive_traffic(service, engine, clock, n=30):
    """Send healthy recipe queries; every request must succeed."""
    indices = engine.corpus.recipe_indices
    for i in range(n):
        recipe = engine.dataset[int(indices[i % len(indices)])]
        response = service.search_by_recipe(recipe, k=5)
        assert response.ok, response.status
        clock.sleep(1.0)


class TestProbeMatchesOffline:
    def test_online_equals_offline_on_healthy_service(self):
        dataset, featurizer = make_world(num_pairs=60)
        engine = make_engine(dataset, featurizer)
        clock = FakeClock()
        service, telemetry = _service(engine, clock)
        golden = GoldenSet.from_engine(engine, size=16, seed=11)
        probe = GoldenProbe(service, golden,
                            registry=telemetry.registry,
                            events=telemetry.events, clock=clock)
        probe.attach()
        online = probe.run()
        offline = golden.offline_metrics(engine)
        assert online.medr == pytest.approx(offline.medr)
        assert online.r_at_1 == pytest.approx(offline.r_at_1)
        assert online.r_at_5 == pytest.approx(offline.r_at_5)
        assert online.r_at_10 == pytest.approx(offline.r_at_10)


class TestStaleSwapIncident:
    def test_quality_alert_fires_while_latency_stays_green(
            self, tmp_path):
        dataset, featurizer = make_world(num_pairs=60)
        engine = make_engine(dataset, featurizer)
        clock = FakeClock()
        service, telemetry = _service(engine, clock)

        # Training-time drift reference for the live corpus.
        image_emb, recipe_emb = engine.model.encode_corpus(
            engine.corpus)
        reference = DriftReference.from_embeddings(recipe_emb,
                                                   image_emb)
        service.drift.start_generation(reference)

        golden = GoldenSet.from_engine(engine, size=16, seed=5)
        probe = GoldenProbe(service, golden,
                            registry=telemetry.registry,
                            events=telemetry.events, clock=clock)
        probe.attach()

        recorder = FlightRecorder(telemetry, tmp_path / "flight",
                                  drift=service.drift, probe=probe,
                                  clock=clock, min_interval_s=0.0)
        slos = default_serving_slos(medr_ceiling=5.0)
        manager = AlertManager(telemetry.registry, slos,
                               windows=FAST_WINDOWS, clock=clock,
                               events=telemetry.events,
                               on_fire=[recorder.on_alert])

        # Phase 1 — healthy steady state: traffic + probe + evaluate.
        _drive_traffic(service, engine, clock)
        assert probe.run().medr <= 5.0
        for _ in range(3):
            clock.sleep(20.0)
            manager.evaluate()
        assert not any(a.firing for a in manager.alerts.values())

        # Phase 2 — the stale swap: a *train*-split corpus is pushed
        # to a service whose golden truth lives in the *test* split.
        # The canaries pass because the corpus is self-consistent.
        stale = featurizer.encode_split(dataset, "train")
        report = service.swap_corpus(stale)
        assert report.ok
        assert report.quality_baseline is not None

        # Phase 3 — traffic still succeeds fast (latency green), but
        # the probe sees garbage ranks.
        _drive_traffic(service, engine, clock)
        online = probe.run()
        assert online.medr > 5.0

        fired = []
        for _ in range(6):
            clock.sleep(20.0)
            fired.extend(a.slo.name for a in manager.evaluate()
                         if a.firing)
            if "quality_medr" in fired:
                break
        assert "quality_medr" in fired
        # The latency and availability SLOs never budged.
        assert not manager.alerts["availability"].firing
        assert not manager.alerts["latency_index_p99"].firing

        # Phase 4 — the incident left a complete flight bundle.
        assert len(recorder.bundles) >= 1
        bundle = recorder.bundles[0]
        assert "quality_medr" in bundle.name
        for name in ("manifest.json", "spans.jsonl", "events.jsonl",
                     "metrics.json", "drift.json", "probe.json"):
            assert (bundle / name).exists(), name
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["context"]["slo"] == "quality_medr"
        metrics = json.loads((bundle / "metrics.json").read_text())
        assert "probe_online_medr" in metrics
        probe_dump = json.loads((bundle / "probe.json").read_text())
        assert probe_dump["online"]["MedR"] == online.medr


class _EmbedScaleFault(ServingFault):
    """Silently scales query embeddings — a bad featurizer deploy."""

    def __init__(self, factor: float = 3.0):
        self.factor = factor
        self.active = False

    def on_embed_result(self, request_id, vector):
        if self.active:
            return vector * self.factor
        return vector


class TestDriftIncident:
    def test_scaled_embeddings_breach_drift_ceiling(self):
        dataset, featurizer = make_world(num_pairs=60)
        engine = make_engine(dataset, featurizer)
        clock = FakeClock()
        fault = _EmbedScaleFault(factor=3.0)
        service, telemetry = _service(engine, clock, faults=fault)

        image_emb, recipe_emb = engine.model.encode_corpus(
            engine.corpus)
        reference = DriftReference.from_embeddings(recipe_emb,
                                                   image_emb)
        service.drift.start_generation(reference)
        manager = AlertManager(
            telemetry.registry,
            default_serving_slos(drift_ceiling=0.25),
            windows=FAST_WINDOWS, clock=clock,
            events=telemetry.events)

        # Healthy traffic: drift stays under the ceiling.
        _drive_traffic(service, engine, clock, n=40)
        healthy = service.drift.scores()
        assert healthy["embedding_norm"] < 0.25

        # The bad deploy goes live; norms triple while distances are
        # unchanged (the index normalizes), so only drift notices.
        fault.active = True
        service.drift.start_generation(reference)
        _drive_traffic(service, engine, clock, n=40)
        scores = service.drift.scores()
        assert scores["embedding_norm"] > 0.25

        fired = []
        for _ in range(6):
            clock.sleep(20.0)
            fired.extend(a.slo.name for a in manager.evaluate()
                         if a.firing)
            if "drift" in fired:
                break
        assert "drift" in fired
        assert service.stats()["drift"]["active"]
