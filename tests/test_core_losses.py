"""Unit tests for the double-triplet losses and adaptive mining."""

import numpy as np
import pytest

from repro.autograd import Tensor, l2_normalize
from repro.core import (STRATEGIES, aggregate_triplets, classification_loss,
                        count_active, instance_triplet_loss, pairwise_loss,
                        semantic_triplet_loss)
from repro.nn import Linear


RNG = lambda seed=0: np.random.default_rng(seed)


def unit_embeddings(n, d, seed=0, requires_grad=True):
    data = RNG(seed).normal(size=(n, d))
    return l2_normalize(Tensor(data, requires_grad=requires_grad))


class TestAggregateTriplets:
    def test_average_is_mean(self):
        losses = Tensor(np.array([1.0, 0.0, 3.0]), requires_grad=True)
        out = aggregate_triplets(losses, "average")
        assert out.item() == pytest.approx(4.0 / 3.0)

    def test_adaptive_divides_by_active(self):
        losses = Tensor(np.array([1.0, 0.0, 3.0]), requires_grad=True)
        out = aggregate_triplets(losses, "adaptive")
        assert out.item() == pytest.approx(2.0)

    def test_adaptive_equals_average_when_all_active(self):
        losses = Tensor(np.array([1.0, 2.0, 3.0]))
        a = aggregate_triplets(losses, "adaptive").item()
        b = aggregate_triplets(losses, "average").item()
        assert a == pytest.approx(b)

    def test_adaptive_gradient_does_not_vanish(self):
        """The paper's core claim: with mostly-inactive triplets the
        averaged gradient shrinks but the adaptive one does not."""
        active_value = 2.0
        for n_inactive in (0, 98):
            values = np.zeros(n_inactive + 1)
            values[0] = active_value
            losses = Tensor(values, requires_grad=True)
            aggregate_triplets(losses, "adaptive").backward()
            np.testing.assert_allclose(losses.grad[0], 1.0)
        # averaging shrinks the same gradient by ~99x
        losses = Tensor(np.concatenate([[active_value], np.zeros(98)]),
                        requires_grad=True)
        aggregate_triplets(losses, "average").backward()
        assert losses.grad[0] == pytest.approx(1.0 / 99.0)

    def test_all_inactive_returns_zero(self):
        out = aggregate_triplets(Tensor(np.zeros(5)), "adaptive")
        assert out.item() == 0.0

    def test_empty_returns_zero(self):
        out = aggregate_triplets(Tensor(np.zeros(0)), "adaptive")
        assert out.item() == 0.0

    def test_hard_keeps_max_per_query(self):
        losses = Tensor(np.array([0.5, 2.0, 1.0, 0.0]), requires_grad=True)
        ids = np.array([0, 0, 1, 1])
        out = aggregate_triplets(losses, "hard", query_ids=ids)
        assert out.item() == pytest.approx((2.0 + 1.0) / 2)

    def test_hard_requires_ids(self):
        with pytest.raises(ValueError):
            aggregate_triplets(Tensor(np.ones(3)), "hard")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            aggregate_triplets(Tensor(np.ones(3)), "bogus")

    def test_count_active(self):
        assert count_active(Tensor(np.array([0.0, 0.1, 0.0, 2.0]))) == 2

    def test_strategies_tuple(self):
        assert set(STRATEGIES) == {"adaptive", "average", "hard"}


class TestInstanceTripletLoss:
    def test_zero_for_well_separated(self):
        emb = l2_normalize(Tensor(np.eye(4), requires_grad=True))
        out = instance_triplet_loss(emb, emb, margin=0.3)
        # matching distance 0, others sqrt(2)-ish apart: no violations
        assert out.loss.item() == 0.0
        assert out.num_active == 0

    def test_counts_triplets_bidirectional(self):
        emb = unit_embeddings(5, 8)
        out = instance_triplet_loss(emb, emb, bidirectional=True)
        assert out.num_triplets == 2 * 5 * 4

    def test_unidirectional_half_count(self):
        a, b = unit_embeddings(5, 8, 1), unit_embeddings(5, 8, 2)
        out = instance_triplet_loss(a, b, bidirectional=False)
        assert out.num_triplets == 5 * 4

    def test_positive_loss_for_random(self):
        a, b = unit_embeddings(6, 4, 3), unit_embeddings(6, 4, 4)
        out = instance_triplet_loss(a, b)
        assert out.loss.item() > 0
        assert 0 < out.active_fraction <= 1

    def test_gradient_direction_improves_loss(self):
        rng = RNG(5)
        a_data = rng.normal(size=(6, 4))
        b_data = rng.normal(size=(6, 4))
        a = Tensor(a_data, requires_grad=True)
        before = instance_triplet_loss(l2_normalize(a), l2_normalize(
            Tensor(b_data)))
        before.loss.backward()
        stepped = Tensor(a_data - 0.5 * a.grad)
        after = instance_triplet_loss(l2_normalize(stepped),
                                      l2_normalize(Tensor(b_data)))
        assert after.loss.item() < before.loss.item()

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            instance_triplet_loss(unit_embeddings(3, 4),
                                  unit_embeddings(4, 4))

    def test_margin_increases_loss(self):
        a, b = unit_embeddings(6, 4, 6), unit_embeddings(6, 4, 7)
        small = instance_triplet_loss(a, b, margin=0.1, strategy="average")
        large = instance_triplet_loss(a, b, margin=0.9, strategy="average")
        assert large.loss.item() > small.loss.item()


class TestSemanticTripletLoss:
    def test_needs_labeled_queries(self):
        emb = unit_embeddings(4, 4)
        out = semantic_triplet_loss(emb, emb, np.full(4, -1))
        assert out.loss.item() == 0.0
        assert out.num_triplets == 0

    def test_needs_two_classes(self):
        emb = unit_embeddings(4, 4)
        out = semantic_triplet_loss(emb, emb, np.zeros(4, dtype=int))
        assert out.num_triplets == 0

    def test_counts_capped_negatives(self):
        # classes: two of 0, two of 1, one unlabeled
        labels = np.array([0, 0, 1, 1, -1])
        emb = unit_embeddings(5, 8, 8)
        out = semantic_triplet_loss(emb, emb, labels, bidirectional=False)
        # each of the 4 labeled queries has 1 positive and 2 negatives
        assert out.num_triplets == 4 * 2

    def test_zero_when_classes_separated(self):
        # class 0 on +x, class 1 on +y, both modalities identical
        data = np.array([[1.0, 0.0], [1.0, 0.01], [0.0, 1.0], [0.01, 1.0]])
        emb = l2_normalize(Tensor(data))
        out = semantic_triplet_loss(emb, emb, np.array([0, 0, 1, 1]),
                                    margin=0.3)
        assert out.loss.item() == 0.0

    def test_violation_when_classes_mixed(self):
        data = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        emb = l2_normalize(Tensor(data))
        out = semantic_triplet_loss(emb, emb, np.array([0, 0, 1, 1]),
                                    margin=0.3)
        assert out.loss.item() > 0

    def test_unlabeled_never_sampled(self):
        labels = np.array([0, 0, 1, 1, -1, -1])
        emb = unit_embeddings(6, 4, 9)
        rng = RNG(0)
        from repro.core.losses import _semantic_triplet_indices
        q, p, n = _semantic_triplet_indices(labels, rng)
        assert (labels[q] >= 0).all()
        assert (labels[p] >= 0).all()
        assert (labels[n] >= 0).all()

    def test_positive_shares_query_class(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        from repro.core.losses import _semantic_triplet_indices
        q, p, n = _semantic_triplet_indices(labels, RNG(1))
        np.testing.assert_array_equal(labels[q], labels[p])
        assert (labels[q] != labels[n]).all()
        assert (q != p).all()

    def test_misaligned_labels_raise(self):
        emb = unit_embeddings(4, 4)
        with pytest.raises(ValueError):
            semantic_triplet_loss(emb, emb, np.zeros(3))


class TestPairwiseLoss:
    def test_zero_for_ideal_layout(self):
        # matches identical (distance 0 <= pos margin), others orthogonal
        emb = l2_normalize(Tensor(np.eye(4)))
        loss = pairwise_loss(emb, emb, positive_margin=0.3,
                             negative_margin=0.9)
        assert loss.item() == pytest.approx(0.0)

    def test_positive_margin_relaxes(self):
        a = unit_embeddings(5, 4, 10)
        b = unit_embeddings(5, 4, 11)
        strict = pairwise_loss(a, b, positive_margin=0.0)
        relaxed = pairwise_loss(a, b, positive_margin=0.5)
        assert relaxed.item() <= strict.item()

    def test_gradients_flow(self):
        a = unit_embeddings(4, 4, 12)
        loss = pairwise_loss(a, unit_embeddings(4, 4, 13))
        loss.backward()

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            pairwise_loss(unit_embeddings(3, 4), unit_embeddings(4, 4))


class TestClassificationLoss:
    def test_ignores_unlabeled(self):
        head = Linear(4, 3, RNG())
        emb = unit_embeddings(4, 4, 14)
        logits = head(emb)
        labels = np.array([-1, -1, -1, -1])
        loss = classification_loss(logits, logits, labels)
        assert loss.item() == 0.0

    def test_positive_for_labeled(self):
        head = Linear(4, 3, RNG())
        emb = unit_embeddings(4, 4, 15)
        logits = head(emb)
        loss = classification_loss(logits, logits, np.array([0, 1, 2, -1]))
        assert loss.item() > 0
