"""Overload chaos: storms, floods, and congestion collapse, real time.

Unlike the fake-clock suites, these tests run real threads against
real wall time — overload is a *concurrency* phenomenon (requests
holding slots while others queue) that a single-threaded fake clock
cannot manufacture.  The schedules stay deterministic where it
matters: storm windows, rates, and fault couplings are fixed; the
assertions are about structural invariants (adaptive beats static,
expired work never reaches the embed stage, ladder transitions stay
ordered, fairness holds) rather than exact counts.

Run with ``make overload-chaos`` / ``pytest -m overload``.
"""

import pytest

from repro.obs import Telemetry
from repro.robustness.faults import (OverloadStorm, SlowEmbedUnderLoad,
                                     TenantFlood)
from repro.serving import (AdmissionConfig, BrownoutConfig,
                           LoadGenerator, ResilientSearchService,
                           RetryPolicy, ServiceConfig, TenantLoad,
                           TenantPolicy)

from ._serving_util import known_ingredients, make_engine, make_world

pytestmark = pytest.mark.overload


@pytest.fixture(scope="module")
def world():
    return make_world()


def fresh_engine(world):
    dataset, featurizer = world
    return make_engine(dataset, featurizer)


def adaptive_config(**overrides):
    """Tight-deadline adaptive admission tuned for sub-second storms."""
    defaults = dict(
        initial_limit=8, min_limit=2, max_limit=16,
        target_p95_s=0.08, evaluate_every=8, latency_window=64,
        max_queue_depth=64,
        brownout=BrownoutConfig(engage_pressure=1.5,
                                release_pressure=0.8,
                                dwell_s=0.05, release_dwell_s=0.1))
    defaults.update(overrides)
    return AdmissionConfig(**defaults)


def make_service(engine, *, admission=None, max_inflight=8,
                 deadline=0.12, slow_per_inflight=0.02):
    """Real-clock service whose embed stage slows with concurrency.

    The :class:`SlowEmbedUnderLoad` coupling is the collapse feedback
    loop: the more requests hold slots, the slower each one gets, so a
    too-high concurrency limit drives *every* request past its
    deadline while a lower one clears them all.
    """
    service_box = []
    fault = SlowEmbedUnderLoad(
        lambda: service_box[0].admission.inflight if service_box else 0,
        delay_per_inflight_s=slow_per_inflight)
    service = ResilientSearchService(
        engine,
        ServiceConfig(deadline=deadline, max_inflight=max_inflight,
                      admission=admission,
                      retry=RetryPolicy(max_attempts=2,
                                        base_delay=0.001, jitter=0.0)),
        telemetry=Telemetry(), faults=fault)
    service_box.append(service)
    return service


def run_storm(service, engine, *, base_rate=30.0, factor=10.0,
              duration_s=1.6, storm_start=0.2, storm_end=1.0,
              extra_loads=(), shapers=None):
    query = known_ingredients(engine)

    def request_fn(tenant, criticality):
        return service.search_by_ingredients(
            query, k=5, tenant=tenant, criticality=criticality)

    loads = [TenantLoad("user", base_rate), *extra_loads]
    if shapers is None:
        shapers = [OverloadStorm(factor, start_s=storm_start,
                                 end_s=storm_end)]
    return LoadGenerator(request_fn, loads, duration_s=duration_s,
                         shapers=shapers).run()


class TestAdaptiveBeatsStatic:
    def test_goodput_under_10x_storm(self, world):
        """The acceptance gate: same storm, same embed slowdown —
        the static cap collapses (every admitted request drags the
        rest past the deadline) while AIMD finds the concurrency knee
        and keeps clearing work."""
        engine = fresh_engine(world)
        static = run_storm(
            make_service(engine, admission=None), engine,
            base_rate=30.0)
        adaptive = run_storm(
            make_service(engine, admission=adaptive_config()), engine,
            base_rate=30.0)
        assert adaptive.good > static.good, (
            f"adaptive goodput {adaptive.good} must strictly beat "
            f"static {static.good}\nstatic:\n{static.render()}\n"
            f"adaptive:\n{adaptive.render()}")

    def test_adaptive_limit_actually_moved(self, world):
        engine = fresh_engine(world)
        service = make_service(engine, admission=adaptive_config())
        run_storm(service, engine, base_rate=30.0)
        snapshot = service.admission.snapshot()
        assert snapshot["mode"] == "adaptive"
        assert snapshot["limit"] < 8, (
            "AIMD never reduced the limit under congestion: "
            f"{snapshot}")


class TestNoWastedWork:
    def test_zero_expired_requests_reach_embed(self, world):
        """Every request whose deadline died in the queue must be
        dropped at dequeue — an expired budget entering the embed
        stage is wasted model work, the exact failure the fair
        queue's drop-at-dequeue gate exists to prevent."""
        engine = fresh_engine(world)
        service = make_service(engine, admission=adaptive_config())
        violations = []
        original = service._embed_stage

        def guarded(generation, request_id, embed, budget, trace):
            if budget.expired:
                violations.append(request_id)
            return original(generation, request_id, embed, budget,
                            trace)

        service._embed_stage = guarded
        report = run_storm(service, engine, base_rate=30.0)
        assert report.offered > 50  # the storm actually happened
        assert violations == [], (
            f"{len(violations)} expired requests reached the embed "
            f"stage: {violations[:10]}")
        # And the queue actually expired some: the gate was exercised.
        expired = sum(t.shed_reasons.get("expired", 0)
                      for t in report.tenants.values())
        assert expired > 0


class TestBrownoutLadder:
    def test_transitions_engage_and_release_in_ladder_order(self, world):
        engine = fresh_engine(world)
        service = make_service(engine, admission=adaptive_config())
        # Long tail after the storm so cool observes walk the ladder
        # back down while the trickle load keeps feeding samples.
        run_storm(service, engine, base_rate=30.0, duration_s=2.4,
                  storm_start=0.2, storm_end=1.0)
        records = service.telemetry.events.of_type("brownout")
        assert records, "storm never engaged the brownout ladder"
        directions = {r["direction"] for r in records}
        assert directions == {"engage", "release"}, (
            f"expected both engage and release transitions, got "
            f"{[(r['direction'], r['step']) for r in records]}")
        # Replay the transitions: every engage must activate the next
        # ladder step, every release the last active one — any other
        # sequence means the ladder skipped or jumbled levels.
        ladder = service.admission.brownout.config.ladder
        level = 0
        for record in records:
            if record["direction"] == "engage":
                assert record["step"] == ladder[level]
                level += 1
            else:
                assert record["step"] == ladder[level - 1]
                level -= 1
            assert record["level"] == level

    def test_level_metric_tracks_transitions(self, world):
        engine = fresh_engine(world)
        service = make_service(engine, admission=adaptive_config())
        run_storm(service, engine, base_rate=30.0)
        records = service.telemetry.events.of_type("brownout")
        assert records
        gauge = service.telemetry.registry.get("brownout_level")
        assert gauge.value == records[-1]["level"]


class TestTenantFairness:
    def test_flooding_tenant_cannot_starve_a_polite_one(self, world):
        """Equal-weight tenants; 'flood' offers 12× the load of
        'polite'.  DRR must keep serving polite at its full (small)
        demand — the flood is charged its own sheds."""
        engine = fresh_engine(world)
        service = make_service(
            engine,
            admission=adaptive_config(tenants=(
                TenantPolicy("user", rate=60.0, burst=20.0),)),
            slow_per_inflight=0.01)
        report = run_storm(
            service, engine, base_rate=25.0, duration_s=1.6,
            extra_loads=(TenantLoad("polite", 10.0),),
            shapers=[TenantFlood("user", 12.0, start_s=0.2)])
        flood = report.tenants["user"]
        polite = report.tenants["polite"]
        assert flood.offered > 6 * polite.offered
        # Polite demand (10 rps) is far under its fair half of the
        # service's capacity, so nearly all of it must clear.
        assert polite.good >= 0.6 * polite.offered, (
            f"polite tenant starved:\n{report.render()}")
        # The flood pays for its own abuse: the token bucket clips it
        # at the front door, charged to *its* shed account.
        assert flood.shed > flood.offered * 0.3, (
            f"flood was not shed:\n{report.render()}")
        assert flood.shed_reasons.get("rate_limit", 0) > 0

    def test_shed_accounting_lands_on_the_flooding_tenant(self, world):
        engine = fresh_engine(world)
        service = make_service(
            engine,
            admission=adaptive_config(tenants=(
                TenantPolicy("user", rate=60.0, burst=20.0),)),
            slow_per_inflight=0.01)
        report = run_storm(
            service, engine, base_rate=25.0, duration_s=1.2,
            extra_loads=(TenantLoad("polite", 10.0),),
            shapers=[TenantFlood("user", 12.0, start_s=0.2)])
        counter = service.telemetry.registry.get("requests_shed_total")
        by_tenant = {}
        for (reason, tenant), child in counter.children():
            by_tenant[tenant] = by_tenant.get(tenant, 0) + child.value
        assert by_tenant.get("user", 0) > by_tenant.get("polite", 0)
        # Outcome records carry the same accounting.
        shed_outcomes = [o for o in service.outcomes
                        if o.status == "shed"]
        assert all(o.shed_reason is not None for o in shed_outcomes)
