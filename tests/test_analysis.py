"""Unit tests for t-SNE, cluster metrics and the qualitative tasks."""

import numpy as np
import pytest

from repro.analysis import (TSNE, class_separation_ratio,
                            ingredient_query_embedding, ingredient_to_image,
                            knn_purity, matched_pair_distance,
                            recipe_to_image, remove_ingredient_comparison,
                            run_lambda_sweep)
from repro.core import Trainer, TrainingConfig, build_scenario
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset


RNG = lambda seed=0: np.random.default_rng(seed)


class TestTSNE:
    def test_output_shape(self):
        x = RNG(0).normal(size=(30, 8))
        out = TSNE(perplexity=5, n_iter=50).fit_transform(x)
        assert out.shape == (30, 2)
        assert np.isfinite(out).all()

    def test_separates_well_separated_clusters(self):
        rng = RNG(1)
        a = rng.normal(0.0, 0.1, size=(20, 5))
        b = rng.normal(5.0, 0.1, size=(20, 5))
        coords = TSNE(perplexity=8, n_iter=250,
                      seed=0).fit_transform(np.vstack([a, b]))
        labels = np.array([0] * 20 + [1] * 20)
        # in map space the clusters should also be distinguishable
        assert knn_purity(coords, labels, k=5) > 0.8

    def test_centered_output(self):
        coords = TSNE(perplexity=4, n_iter=50).fit_transform(
            RNG(2).normal(size=(15, 4)))
        np.testing.assert_allclose(coords.mean(axis=0), np.zeros(2),
                                   atol=1e-8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TSNE(perplexity=1)
        with pytest.raises(ValueError):
            TSNE(n_iter=5)

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 4)))

    def test_deterministic_under_seed(self):
        x = RNG(3).normal(size=(20, 5))
        a = TSNE(perplexity=5, n_iter=40, seed=9).fit_transform(x)
        b = TSNE(perplexity=5, n_iter=40, seed=9).fit_transform(x)
        np.testing.assert_allclose(a, b)


class TestClusterMetrics:
    def test_knn_purity_perfect_clusters(self):
        emb = np.vstack([np.tile([1.0, 0.0], (10, 1)) + RNG(4).normal(
            0, 0.01, size=(10, 2)),
            np.tile([0.0, 1.0], (10, 1)) + RNG(5).normal(
            0, 0.01, size=(10, 2))])
        labels = np.array([0] * 10 + [1] * 10)
        assert knn_purity(emb, labels, k=5) == 1.0

    def test_knn_purity_random_near_chance(self):
        emb = RNG(6).normal(size=(100, 8))
        labels = RNG(7).integers(0, 4, size=100)
        purity = knn_purity(emb, labels, k=10)
        assert 0.1 < purity < 0.45  # chance = 0.25

    def test_knn_purity_validation(self):
        with pytest.raises(ValueError):
            knn_purity(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            knn_purity(np.zeros((5, 2)), np.zeros(5), k=5)

    def test_matched_pair_distance_zero_for_identical(self):
        x = RNG(8).normal(size=(6, 4))
        assert matched_pair_distance(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_matched_pair_distance_misaligned(self):
        with pytest.raises(ValueError):
            matched_pair_distance(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_separation_ratio_orders_structures(self):
        rng = RNG(9)
        labels = np.array([0] * 15 + [1] * 15)
        tight = np.vstack([rng.normal(0, 0.05, size=(15, 3)) + [1, 0, 0],
                           rng.normal(0, 0.05, size=(15, 3)) + [0, 1, 0]])
        loose = rng.normal(size=(30, 3))
        assert (class_separation_ratio(tight, labels)
                > class_separation_ratio(loose, labels))

    def test_separation_needs_two_classes(self):
        with pytest.raises(ValueError):
            class_separation_ratio(np.zeros((4, 2)), np.zeros(4))


@pytest.fixture(scope="module")
def trained_setup():
    """A small trained AdaMine model + corpus for qualitative tests."""
    ds = generate_dataset(DatasetConfig(num_pairs=160, num_classes=6,
                                        image_size=12, seed=21))
    feat = RecipeFeaturizer(word_dim=12, sentence_dim=12,
                            max_ingredients=10, max_sentences=6).fit(ds)
    train = feat.encode_split(ds, "train")
    val = feat.encode_split(ds, "val")
    test = feat.encode_split(ds, "test")
    config = TrainingConfig(epochs=4, freeze_epochs=0, batch_size=24,
                            learning_rate=2e-3, augment=False,
                            eval_bag_size=24, eval_num_bags=1)
    model, cfg = build_scenario("adamine", feat, 6, 12, base_config=config,
                                latent_dim=24, seed=0)
    Trainer(model, cfg).fit(train, val)
    return {"dataset": ds, "featurizer": feat, "model": model,
            "train": train, "test": test}


class TestRecipeToImage:
    def test_hits_annotated(self, trained_setup):
        results = recipe_to_image(trained_setup["model"],
                                  trained_setup["dataset"],
                                  trained_setup["test"],
                                  np.array([0, 1]), k=5)
        assert len(results) == 2
        for result in results:
            assert len(result.hits) == 5
            assert all(h.relation in ("match", "same-class", "other")
                       for h in result.hits)
            assert 0.0 <= result.same_class_fraction <= 1.0

    def test_match_rank_consistency(self, trained_setup):
        results = recipe_to_image(trained_setup["model"],
                                  trained_setup["dataset"],
                                  trained_setup["test"],
                                  np.array([3]), k=len(trained_setup["test"]))
        # searching the full corpus must find the match somewhere
        assert results[0].match_rank is not None

    def test_distances_sorted(self, trained_setup):
        results = recipe_to_image(trained_setup["model"],
                                  trained_setup["dataset"],
                                  trained_setup["test"], np.array([2]), k=6)
        distances = [h.distance for h in results[0].hits]
        assert distances == sorted(distances)


class TestIngredientToImage:
    def test_query_embedding_unit_norm(self, trained_setup):
        vec = ingredient_query_embedding(
            trained_setup["model"], trained_setup["featurizer"],
            "butter", trained_setup["train"])
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_unknown_ingredient_raises(self, trained_setup):
        with pytest.raises(ValueError):
            ingredient_query_embedding(
                trained_setup["model"], trained_setup["featurizer"],
                "unobtainium", trained_setup["train"])

    def test_search_returns_k_hits(self, trained_setup):
        result = ingredient_to_image(
            trained_setup["model"], trained_setup["featurizer"],
            trained_setup["dataset"], trained_setup["test"], "butter", k=5)
        assert len(result.hits) == 5
        assert len(result.containment) == 5
        assert 0.0 <= result.hit_rate <= 1.0

    def test_class_constrained_search(self, trained_setup):
        ds = trained_setup["dataset"]
        corpus = trained_setup["test"]
        class_id = int(np.bincount(corpus.true_class_ids).argmax())
        result = ingredient_to_image(
            trained_setup["model"], trained_setup["featurizer"],
            ds, corpus, "butter", k=3, class_id=class_id)
        for hit in result.hits:
            assert corpus.true_class_ids[hit.row] == class_id


class TestRemoveIngredient:
    def test_comparison_structure(self, trained_setup):
        corpus = trained_setup["test"]
        ds = trained_setup["dataset"]
        row = next(r for r in range(len(corpus))
                   if len(ds[int(corpus.recipe_indices[r])].ingredients) > 3)
        ingredient = ds[int(corpus.recipe_indices[row])].ingredients[-1]
        result = remove_ingredient_comparison(
            trained_setup["model"], trained_setup["featurizer"], ds,
            corpus, row, ingredient, k=4)
        assert len(result.hits_with) == 4
        assert len(result.hits_without) == 4
        assert -1.0 <= result.removal_effect <= 1.0


class TestLambdaSweep:
    def test_sweep_returns_requested_points(self, trained_setup):
        ds = trained_setup["dataset"]
        feat = trained_setup["featurizer"]
        config = TrainingConfig(epochs=1, freeze_epochs=0, batch_size=24,
                                learning_rate=2e-3, augment=False,
                                eval_bag_size=20, eval_num_bags=1)
        points = run_lambda_sweep(
            feat, trained_setup["train"],
            feat.encode_split(ds, "val"), 6, 12,
            lambdas=(0.2, 0.8), base_config=config, latent_dim=16)
        assert [p.lambda_sem for p in points] == [0.2, 0.8]
        assert all(np.isfinite(p.medr) for p in points)

    def test_empty_lambdas_raise(self, trained_setup):
        with pytest.raises(ValueError):
            run_lambda_sweep(trained_setup["featurizer"],
                             trained_setup["train"], trained_setup["test"],
                             6, 12, lambdas=())
