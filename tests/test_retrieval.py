"""Unit tests for the retrieval engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import (NearestNeighborIndex, RetrievalMetrics,
                             RetrievalProtocol, aggregate_metrics,
                             cosine_distance, cosine_distance_matrix,
                             evaluate_embeddings, median_rank, normalize_rows,
                             rank_items, ranks_of_matches, recall_at_k)


RNG = lambda seed=0: np.random.default_rng(seed)


class TestDistance:
    def test_normalize_rows_unit(self):
        x = RNG().normal(size=(5, 4))
        out = normalize_rows(x)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(5))

    def test_normalize_zero_row_safe(self):
        out = normalize_rows(np.zeros((2, 3)))
        assert np.isfinite(out).all()

    def test_distance_matrix_identity(self):
        x = RNG(1).normal(size=(6, 4))
        dist = cosine_distance_matrix(x, x)
        np.testing.assert_allclose(np.diag(dist), np.zeros(6), atol=1e-12)

    def test_distance_range(self):
        dist = cosine_distance_matrix(RNG(2).normal(size=(10, 5)),
                                      RNG(3).normal(size=(8, 5)))
        assert (dist >= -1e-12).all() and (dist <= 2 + 1e-12).all()

    def test_rowwise_matches_matrix_diag(self):
        a, b = RNG(4).normal(size=(5, 3)), RNG(5).normal(size=(5, 3))
        np.testing.assert_allclose(cosine_distance(a, b),
                                   np.diag(cosine_distance_matrix(a, b)))


class TestRanking:
    def test_perfect_embeddings_rank_one(self):
        x = np.eye(6)
        ranks = ranks_of_matches(cosine_distance_matrix(x, x))
        np.testing.assert_array_equal(ranks, np.ones(6))

    def test_known_ranks(self):
        # query 0: match at distance 0.5, one better candidate at 0.1
        dist = np.array([[0.5, 0.1], [0.9, 0.2]])
        np.testing.assert_array_equal(ranks_of_matches(dist), [2, 1])

    def test_ties_are_pessimistic(self):
        dist = np.array([[0.5, 0.5], [0.5, 0.5]])
        np.testing.assert_array_equal(ranks_of_matches(dist), [2, 2])

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            ranks_of_matches(np.zeros((2, 3)))

    def test_rank_items_topk(self):
        row = np.array([0.3, 0.1, 0.2])
        np.testing.assert_array_equal(rank_items(row, k=2), [1, 2])


class TestMetrics:
    def test_median_rank(self):
        assert median_rank(np.array([1, 2, 100])) == 2.0

    def test_recall_at_k(self):
        ranks = np.array([1, 3, 6, 20])
        assert recall_at_k(ranks, 1) == 25.0
        assert recall_at_k(ranks, 5) == 50.0
        assert recall_at_k(ranks, 10) == 75.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_rank(np.array([]))
        with pytest.raises(ValueError):
            recall_at_k(np.array([]), 5)
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), 0)

    def test_from_ranks(self):
        metrics = RetrievalMetrics.from_ranks(np.array([1, 1, 11]))
        assert metrics.medr == 1.0
        assert metrics.r_at_10 == pytest.approx(200 / 3)

    def test_aggregate(self):
        bags = [RetrievalMetrics(2.0, 50.0, 80.0, 90.0),
                RetrievalMetrics(4.0, 30.0, 60.0, 70.0)]
        agg = aggregate_metrics(bags)
        assert agg["MedR"] == (3.0, 1.0)
        assert agg["R@1"][0] == 40.0

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_metrics([])


class TestProtocol:
    def test_perfect_embeddings(self):
        emb = RNG(6).normal(size=(80, 8))
        result = evaluate_embeddings(emb, emb, bag_size=40, num_bags=3)
        assert result.medr("image_to_recipe") == 1.0
        assert result.image_to_recipe["R@1"][0] == 100.0

    def test_random_embeddings_near_chance(self):
        a = RNG(7).normal(size=(200, 16))
        b = RNG(8).normal(size=(200, 16))
        result = evaluate_embeddings(a, b, bag_size=100, num_bags=5)
        medr = result.medr("image_to_recipe")
        assert 30 <= medr <= 70  # chance is ~50 on bags of 100

    def test_bags_capped_at_population(self):
        emb = RNG(9).normal(size=(20, 4))
        result = evaluate_embeddings(emb, emb, bag_size=1000, num_bags=2)
        assert result.bag_size == 20

    def test_bag_sampling_unique_within_bag(self):
        protocol = RetrievalProtocol(bag_size=50, num_bags=4, seed=0)
        for bag in protocol.sample_bags(60):
            assert len(np.unique(bag)) == len(bag)

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            evaluate_embeddings(np.zeros((4, 3)), np.zeros((5, 3)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetrievalProtocol(bag_size=1)
        with pytest.raises(ValueError):
            RetrievalProtocol(num_bags=0)

    def test_summary_format(self):
        emb = RNG(10).normal(size=(30, 4))
        text = evaluate_embeddings(emb, emb, bag_size=30,
                                   num_bags=1).summary()
        assert "im->rec" in text and "MedR" in text

    def test_deterministic_given_seed(self):
        a, b = RNG(11).normal(size=(50, 6)), RNG(12).normal(size=(50, 6))
        r1 = evaluate_embeddings(a, b, bag_size=25, num_bags=3, seed=5)
        r2 = evaluate_embeddings(a, b, bag_size=25, num_bags=3, seed=5)
        assert r1.image_to_recipe == r2.image_to_recipe


class TestIndex:
    def test_query_returns_nearest(self):
        emb = np.eye(5)
        index = NearestNeighborIndex(emb)
        ids, dist = index.query(np.array([1.0, 0, 0, 0, 0]), k=2)
        assert ids[0] == 0
        assert dist[0] == pytest.approx(0.0, abs=1e-12)

    def test_class_constrained_query(self):
        emb = np.eye(4)
        classes = np.array([0, 0, 1, 1])
        index = NearestNeighborIndex(emb, class_ids=classes)
        ids, __ = index.query(np.array([1.0, 0, 0, 0]), k=2, class_id=1)
        assert set(ids) == {2, 3}

    def test_class_query_without_metadata_raises(self):
        index = NearestNeighborIndex(np.eye(3))
        with pytest.raises(ValueError):
            index.query(np.ones(3), class_id=0)

    def test_missing_class_returns_empty_pair(self):
        # empty pool, non-strict: an empty answer, not an exception —
        # shards routinely hold zero items of a queried class
        index = NearestNeighborIndex(np.eye(3), class_ids=np.zeros(3))
        ids, dist = index.query(np.ones(3), class_id=7)
        assert ids.shape == (0,) and dist.shape == (0,)
        assert ids.dtype == np.int64 and dist.dtype == np.float64

    def test_missing_class_strict_raises(self):
        index = NearestNeighborIndex(np.eye(3), class_ids=np.zeros(3))
        with pytest.raises(ValueError, match="candidate pool"):
            index.query(np.ones(3), class_id=7, strict=True)

    def test_custom_ids(self):
        index = NearestNeighborIndex(np.eye(3), ids=np.array([10, 20, 30]))
        ids, __ = index.query(np.array([0, 1.0, 0]), k=1)
        assert ids[0] == 20

    def test_misaligned_ids_raise(self):
        with pytest.raises(ValueError):
            NearestNeighborIndex(np.eye(3), ids=np.array([1]))
        with pytest.raises(ValueError):
            NearestNeighborIndex(np.eye(3), class_ids=np.array([1]))

    def test_invalid_k(self):
        index = NearestNeighborIndex(np.eye(3))
        with pytest.raises(ValueError):
            index.query(np.ones(3), k=0)


class TestIndexPoolContract:
    def make(self):
        return NearestNeighborIndex(np.eye(5),
                                    class_ids=np.array([0, 0, 0, 1, 1]))

    def test_pool_size(self):
        index = self.make()
        assert index.pool_size() == 5
        assert index.pool_size(0) == 3
        assert index.pool_size(1) == 2
        assert index.pool_size(9) == 0

    def test_pool_size_without_metadata_raises(self):
        with pytest.raises(ValueError):
            NearestNeighborIndex(np.eye(3)).pool_size(0)

    def test_underfull_pool_returns_fewer_results(self):
        index = self.make()
        ids, dist = index.query(np.ones(5), k=4, class_id=1)
        assert len(ids) == len(dist) == index.pool_size(1) == 2

    def test_strict_raises_when_k_exceeds_pool(self):
        index = self.make()
        with pytest.raises(ValueError, match="candidate pool"):
            index.query(np.ones(5), k=4, class_id=1, strict=True)
        with pytest.raises(ValueError, match="candidate pool"):
            index.query(np.ones(5), k=6, strict=True)

    def test_strict_ok_when_pool_suffices(self):
        index = self.make()
        ids, __ = index.query(np.ones(5), k=2, class_id=1, strict=True)
        assert len(ids) == 2


class TestIndexBatch:
    def make(self, n=40, d=8, classes=3, seed=0):
        rng = np.random.default_rng(seed)
        return NearestNeighborIndex(
            rng.normal(size=(n, d)),
            class_ids=rng.integers(0, classes, size=n))

    def test_batch_matches_per_row_query(self):
        index = self.make()
        vectors = np.random.default_rng(1).normal(size=(7, 8))
        ids, dist = index.query_batch(vectors, k=5)
        assert ids.shape == dist.shape == (7, 5)
        for row, vector in enumerate(vectors):
            one_ids, one_dist = index.query(vector, k=5)
            np.testing.assert_array_equal(ids[row], one_ids)
            np.testing.assert_allclose(dist[row], one_dist,
                                       rtol=0, atol=1e-12)

    def test_batch_class_constraint(self):
        index = self.make()
        vectors = np.random.default_rng(2).normal(size=(3, 8))
        ids, __ = index.query_batch(vectors, k=4, class_id=1)
        member_rows = set(np.flatnonzero(index.class_ids == 1))
        assert all(int(i) in member_rows for i in ids.ravel())

    def test_batch_underfull_and_empty_pools(self):
        index = NearestNeighborIndex(
            np.eye(5), class_ids=np.array([0, 0, 0, 1, 1]))
        vectors = np.ones((4, 5))
        ids, dist = index.query_batch(vectors, k=4, class_id=1)
        assert ids.shape == dist.shape == (4, 2)
        ids, dist = index.query_batch(vectors, k=4, class_id=9)
        assert ids.shape == dist.shape == (4, 0)
        with pytest.raises(ValueError, match="candidate pool"):
            index.query_batch(vectors, k=4, class_id=9, strict=True)

    def test_batch_rejects_bad_shapes(self):
        index = self.make()
        with pytest.raises(ValueError, match="2-D"):
            index.query_batch(np.ones(8), k=2)
        with pytest.raises(ValueError, match="k must be"):
            index.query_batch(np.ones((2, 8)), k=0)


class TestIndexSubsetClone:
    def test_subset_preserves_bits_and_metadata(self):
        rng = np.random.default_rng(3)
        index = NearestNeighborIndex(
            rng.normal(size=(20, 6)), ids=np.arange(100, 120),
            class_ids=rng.integers(0, 2, size=20))
        positions = np.array([1, 4, 7, 19])
        sub = index.subset(positions)
        np.testing.assert_array_equal(sub.embeddings.tobytes(),
                                      index.embeddings[positions].tobytes())
        np.testing.assert_array_equal(sub.ids, index.ids[positions])
        np.testing.assert_array_equal(sub.class_ids,
                                      index.class_ids[positions])

    def test_subset_relabel_and_misalignment(self):
        index = NearestNeighborIndex(np.eye(4))
        sub = index.subset(np.array([2, 0]), relabel=np.array([7, 9]))
        ids, __ = sub.query(np.array([0, 0, 1.0, 0]), k=1)
        assert ids[0] == 7
        with pytest.raises(ValueError, match="relabel"):
            index.subset(np.array([0, 1]), relabel=np.array([5]))

    def test_clone_is_independent_copy(self):
        index = NearestNeighborIndex(np.eye(3))
        dup = index.clone()
        assert dup.embeddings.tobytes() == index.embeddings.tobytes()
        dup.embeddings.fill(np.nan)  # corrupting the clone ...
        assert np.isfinite(index.embeddings).all()  # ... spares the original


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30))
def test_property_ranks_bounded(n):
    rng = np.random.default_rng(n)
    dist = rng.uniform(size=(n, n))
    ranks = ranks_of_matches(dist)
    assert (ranks >= 1).all() and (ranks <= n).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=20))
def test_property_recall_monotone_in_k(n):
    rng = np.random.default_rng(n + 100)
    ranks = rng.integers(1, n + 1, size=n)
    values = [recall_at_k(ranks, k) for k in (1, 5, 10)]
    assert values == sorted(values)
