"""Unit tests for the vision substrate."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.vision import (Augmenter, HistogramEncoder, MiniResNet, MLPEncoder,
                          additive_noise, brightness_jitter,
                          build_image_encoder, color_statistics,
                          flip_horizontal, pretrain_backbone, random_crop)
from repro.vision.resnet import BatchNorm2d, ResidualBlock


RNG = lambda seed=0: np.random.default_rng(seed)


class TestBatchNorm2d:
    def test_normalizes_channels(self):
        bn = BatchNorm2d(3)
        x = RNG(0).normal(5.0, 2.0, size=(8, 3, 4, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3),
                                   atol=1e-8)

    def test_gradients_flow(self):
        bn = BatchNorm2d(2)
        x = Tensor(RNG(1).normal(size=(4, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None


class TestResidualBlock:
    def test_preserves_shape(self):
        block = ResidualBlock(4, RNG())
        x = Tensor(RNG(2).normal(size=(2, 4, 6, 6)))
        assert block(x).shape == (2, 4, 6, 6)

    def test_skip_connection_active(self):
        """With zeroed convolutions the block must be ReLU(identity)."""
        block = ResidualBlock(2, RNG())
        block.conv1.weight.data[:] = 0
        block.conv2.weight.data[:] = 0
        x_data = np.abs(RNG(3).normal(size=(1, 2, 4, 4))) + 0.1
        block.eval()
        # running stats are (0 mean, 1 var) at init -> bn(0)=0
        out = block(Tensor(x_data))
        np.testing.assert_allclose(out.data, x_data, atol=1e-6)


class TestMiniResNet:
    def test_output_shape(self):
        net = MiniResNet(RNG(), widths=(4, 8, 16), image_size=16)
        out = net(Tensor(RNG(4).normal(size=(3, 3, 16, 16))))
        assert out.shape == (3, 16)
        assert net.feature_dim == 16

    def test_indivisible_image_size_raises(self):
        with pytest.raises(ValueError):
            MiniResNet(RNG(), widths=(4, 8, 16), image_size=18)

    def test_freeze_blocks_training(self):
        net = MiniResNet(RNG(), widths=(4, 8), image_size=8)
        net.eval()
        net.freeze()
        net(Tensor(RNG(5).normal(size=(2, 3, 8, 8)))).sum().backward()
        assert all(p.grad is None for p in net.parameters())

    def test_distinguishes_color(self):
        """Mean-pooled features must differ between color-dominant images."""
        net = MiniResNet(RNG(), widths=(4, 8), image_size=8)
        net.eval()
        red = np.zeros((1, 3, 8, 8)); red[:, 0] = 1.0
        green = np.zeros((1, 3, 8, 8)); green[:, 1] = 1.0
        fr = net(Tensor(red)).data
        fg = net(Tensor(green)).data
        assert not np.allclose(fr, fg)


class TestMLPEncoder:
    def test_output_shape(self):
        enc = MLPEncoder(RNG(), image_size=12, feature_dim=20)
        out = enc(Tensor(RNG(6).normal(size=(5, 3, 12, 12))))
        assert out.shape == (5, 20)
        assert enc.feature_dim == 20

    def test_factory(self):
        assert isinstance(build_image_encoder("mlp", RNG(), 12), MLPEncoder)
        assert isinstance(build_image_encoder("resnet", RNG(), 16),
                          MiniResNet)
        assert isinstance(build_image_encoder("hist", RNG(), 12),
                          HistogramEncoder)
        with pytest.raises(ValueError):
            build_image_encoder("vit", RNG(), 16)


class TestHistogramEncoder:
    def test_output_shape(self):
        enc = HistogramEncoder(RNG(), image_size=12, feature_dim=20)
        from repro.autograd import Tensor
        out = enc(Tensor(RNG(1).uniform(size=(5, 3, 12, 12))))
        assert out.shape == (5, 20)

    def test_histogram_is_position_invariant(self):
        enc = HistogramEncoder(RNG(), image_size=8)
        image = np.zeros((1, 3, 8, 8))
        image[0, 0, 0, 0] = 0.9  # one red pixel, top-left
        shifted = np.zeros((1, 3, 8, 8))
        shifted[0, 0, 7, 7] = 0.9  # same pixel, bottom-right
        hist_a = enc.extract(image)[0, 6:6 + 64]
        hist_b = enc.extract(shifted)[0, 6:6 + 64]
        np.testing.assert_allclose(hist_a, hist_b)

    def test_histogram_detects_ingredient_color(self):
        enc = HistogramEncoder(RNG(), image_size=8)
        plain = np.full((1, 3, 8, 8), 0.5)
        with_red = plain.copy()
        with_red[0, 0, 2:5, 2:5] = 0.95  # a red blob
        assert not np.allclose(enc.extract(plain), enc.extract(with_red))

    def test_histogram_sums_to_one(self):
        enc = HistogramEncoder(RNG(), image_size=8)
        features = enc.extract(RNG(2).uniform(size=(3, 3, 8, 8)))
        hist = features[:, 6:6 + 64] / 4.0  # undo the scale factor
        np.testing.assert_allclose(hist.sum(axis=1), np.ones(3))

    def test_no_gradient_to_images(self):
        from repro.autograd import Tensor
        enc = HistogramEncoder(RNG(), image_size=8)
        images = Tensor(RNG(3).uniform(size=(2, 3, 8, 8)),
                        requires_grad=True)
        enc(images).sum().backward()
        assert images.grad is None  # frozen feature extractor

    def test_indivisible_grid_raises(self):
        with pytest.raises(ValueError):
            HistogramEncoder(RNG(), image_size=10, grid=4)


class TestTransforms:
    @pytest.fixture
    def images(self):
        return RNG(7).uniform(0, 1, size=(4, 3, 8, 8))

    def test_flip_is_involution(self, images):
        np.testing.assert_allclose(flip_horizontal(flip_horizontal(images)),
                                   images)

    def test_flip_does_not_mutate(self, images):
        copy = images.copy()
        flip_horizontal(images)
        np.testing.assert_allclose(images, copy)

    def test_brightness_stays_in_range(self, images):
        out = brightness_jitter(images, RNG(8), strength=0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_noise_changes_pixels(self, images):
        out = additive_noise(images, RNG(9), sigma=0.05)
        assert not np.allclose(out, images)

    def test_random_crop_shape(self, images):
        out = random_crop(images, RNG(10), pad=2)
        assert out.shape == images.shape

    def test_augmenter_shape_and_range(self, images):
        aug = Augmenter(RNG(11))
        out = aug(images)
        assert out.shape == images.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_augmenter_disabled_is_identity(self, images):
        aug = Augmenter(RNG(12), flip_prob=0.0, brightness=0.0,
                        noise_sigma=0.0, crop_pad=0)
        np.testing.assert_allclose(aug(images), images)


class TestPretrain:
    def test_color_statistics_shape(self):
        stats = color_statistics(RNG(13).uniform(size=(5, 3, 8, 8)))
        assert stats.shape == (5, 6)

    def test_pretrain_reduces_loss(self):
        rng = RNG(14)
        # images with strongly varying color statistics
        images = np.zeros((48, 3, 8, 8))
        for i in range(48):
            images[i] = rng.dirichlet([1, 1, 1])[:, None, None]
        net = MiniResNet(RNG(15), widths=(4, 8), image_size=8)
        losses = pretrain_backbone(net, images, epochs=4, batch_size=12,
                                   lr=5e-3)
        assert losses[-1] < losses[0]
