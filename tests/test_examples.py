"""Smoke tests: every example script runs end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs_and_reports_metrics():
    output = run_example("quickstart.py")
    assert "MedR" in output
    assert "Top-5 images" in output


def test_whats_in_my_fridge():
    output = run_example("whats_in_my_fridge.py",
                         "--ingredients", "butter", "onion",
                         "--scale", "test", "--top-k", "3")
    assert "retrieved for" in output


def test_dietary_filter():
    output = run_example("dietary_filter.py", "--ingredient", "butter",
                         "--scale", "test", "--top-k", "3")
    assert "removal effect" in output


def test_compare_baselines():
    output = run_example("compare_baselines.py", "--scale", "test")
    assert "Paired bootstrap" in output
    assert "adamine" in output


def test_streaming_ingest_demo(tmp_path):
    output = run_example("streaming_ingest_demo.py",
                         "--log-dir", str(tmp_path / "wal"))
    assert "process died" in output
    assert "every acknowledged write survived" in output
    assert "exactly once across" in output
    assert "quality green: OK" in output


def test_overload_demo():
    output = run_example("overload_demo.py", "--duration", "2.0")
    assert "engage" in output          # the ladder actually engaged
    assert "goodput" in output
    assert "brownout level after cool-down: 0" in output
    assert "post-storm request: status=ok" in output


def test_visualize_latent_space(tmp_path):
    output = run_example("visualize_latent_space.py",
                         "--out", str(tmp_path), "--scale", "test")
    assert "figure3_adamine" in output
    assert (tmp_path / "figure3_adamine.ppm").exists()
    assert (tmp_path / "figure4_lambda.ppm").exists()
