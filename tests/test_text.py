"""Unit tests for the text substrate (tokenizer, vocab, word2vec, skip-thought)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (PAD_TOKEN, UNK_TOKEN, SkipThoughtLite, Vocabulary,
                        Word2Vec, split_sentences, tokenize)


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Mix the Flour!") == ["mix", "the", "flour"]

    def test_keeps_numbers(self):
        assert tokenize("bake at 375 degrees") == ["bake", "at", "375",
                                                   "degrees"]

    def test_apostrophes(self):
        assert tokenize("grandma's pie") == ["grandma's", "pie"]

    def test_empty(self):
        assert tokenize("  ,.!  ") == []

    def test_split_sentences(self):
        text = "Chop the onion. Fry until golden! Serve warm."
        assert split_sentences(text) == [
            "Chop the onion.", "Fry until golden!", "Serve warm."]

    def test_split_sentences_single(self):
        assert split_sentences("Enjoy!") == ["Enjoy!"]


class TestVocabulary:
    def test_reserved_tokens(self):
        vocab = Vocabulary()
        assert vocab[PAD_TOKEN] == 0
        assert vocab[UNK_TOKEN] == 1

    def test_add_and_lookup(self):
        vocab = Vocabulary(["salt", "pepper"])
        assert vocab["salt"] == 2
        assert "pepper" in vocab
        assert len(vocab) == 4

    def test_encode_unknown_maps_to_unk(self):
        vocab = Vocabulary(["salt"])
        assert vocab.encode(["salt", "saffron"]) == [2, 1]

    def test_decode_roundtrip(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["c", "a"])
        assert vocab.decode(ids) == ["c", "a"]

    def test_from_corpus_frequency_order(self):
        docs = [["x", "y", "y"], ["y", "z"]]
        vocab = Vocabulary.from_corpus(docs)
        assert vocab["y"] == 2  # most frequent gets smallest id

    def test_from_corpus_min_count(self):
        vocab = Vocabulary.from_corpus([["rare", "common", "common"]],
                                       min_count=2)
        assert "rare" not in vocab
        assert "common" in vocab

    def test_from_corpus_max_size(self):
        docs = [[f"t{i}" for i in range(10)]]
        vocab = Vocabulary.from_corpus(docs, max_size=5)
        assert len(vocab) == 5

    def test_encode_padded(self):
        vocab = Vocabulary(["a", "b"])
        out = vocab.encode_padded(["a", "b"], 4)
        np.testing.assert_array_equal(out, [2, 3, 0, 0])

    def test_encode_padded_truncates(self):
        vocab = Vocabulary(["a", "b", "c"])
        out = vocab.encode_padded(["a", "b", "c"], 2)
        np.testing.assert_array_equal(out, [2, 3])


@pytest.fixture(scope="module")
def cooccurrence_corpus():
    """Corpus where {sugar, flour, butter} and {tomato, garlic, basil}
    co-occur within their groups but never across."""
    rng = np.random.default_rng(0)
    sweet = ["sugar", "flour", "butter", "eggs"]
    savory = ["tomato", "garlic", "basil", "onion"]
    docs = []
    for __ in range(120):
        group = sweet if rng.random() < 0.5 else savory
        docs.append(list(rng.permutation(group))[:3])
    return docs


class TestWord2Vec:
    def test_learns_cooccurrence_structure(self, cooccurrence_corpus):
        vocab = Vocabulary.from_corpus(cooccurrence_corpus)
        model = Word2Vec(vocab, dim=12, seed=0).fit(cooccurrence_corpus,
                                                    epochs=8)
        within = model.similarity("sugar", "flour")
        across = model.similarity("sugar", "tomato")
        assert within > across

    def test_most_similar_prefers_same_group(self, cooccurrence_corpus):
        vocab = Vocabulary.from_corpus(cooccurrence_corpus)
        model = Word2Vec(vocab, dim=12, seed=1).fit(cooccurrence_corpus,
                                                    epochs=8)
        neighbours = [name for name, __ in model.most_similar("garlic", k=3)]
        savory = {"tomato", "basil", "onion"}
        assert len(savory.intersection(neighbours)) >= 2

    def test_vectors_pad_row_zero(self, cooccurrence_corpus):
        vocab = Vocabulary.from_corpus(cooccurrence_corpus)
        model = Word2Vec(vocab, dim=8, seed=0).fit(cooccurrence_corpus,
                                                   epochs=1)
        np.testing.assert_allclose(model.vectors()[0], np.zeros(8))

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            Word2Vec(Vocabulary(["a"]), dim=4).fit([])

    def test_vector_shape(self, cooccurrence_corpus):
        vocab = Vocabulary.from_corpus(cooccurrence_corpus)
        model = Word2Vec(vocab, dim=6, seed=0).fit(cooccurrence_corpus,
                                                   epochs=1)
        assert model.vectors().shape == (len(vocab), 6)


class TestSkipThoughtLite:
    @pytest.fixture(scope="class")
    def encoder(self):
        docs = [
            ["Chop the onion.", "Fry the onion.", "Serve the onion warm."],
            ["Mix sugar and flour.", "Bake the sugar mixture.",
             "Cool the cake."],
            ["Boil the pasta.", "Drain the pasta.", "Add sauce to pasta."],
        ] * 10
        sentences = [s for doc in docs for s in doc]
        tokenized = [tokenize(s) for s in sentences]
        vocab = Vocabulary.from_corpus(tokenized)
        w2v = Word2Vec(vocab, dim=12, seed=0).fit(tokenized, epochs=3)
        return SkipThoughtLite(vocab, w2v.vectors(), dim=10,
                               seed=0).fit(docs, epochs=2)

    def test_encode_unit_norm(self, encoder):
        vec = encoder.encode("Chop the onion.")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_encode_deterministic(self, encoder):
        a = encoder.encode("Mix sugar and flour.")
        b = encoder.encode("Mix sugar and flour.")
        np.testing.assert_allclose(a, b)

    def test_encode_many_shape(self, encoder):
        out = encoder.encode_many(["Boil the pasta.", "Drain the pasta."])
        assert out.shape == (2, 10)

    def test_encode_many_empty(self, encoder):
        assert encoder.encode_many([]).shape == (0, 10)

    def test_related_sentences_closer_than_unrelated(self, encoder):
        onion_a = encoder.encode("Chop the onion.")
        onion_b = encoder.encode("Fry the onion.")
        cake = encoder.encode("Bake the sugar mixture.")
        assert onion_a @ onion_b > onion_a @ cake

    def test_unknown_words_give_finite_vector(self, encoder):
        vec = encoder.encode("xylophone quux")
        assert np.isfinite(vec).all()

    def test_mismatched_table_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(ValueError):
            SkipThoughtLite(vocab, np.zeros((99, 4)))

    def test_fit_too_small_raises(self):
        vocab = Vocabulary(["a"])
        enc = SkipThoughtLite(vocab, np.zeros((3, 4)), dim=4)
        with pytest.raises(ValueError):
            enc.fit([["one sentence."]])


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["mix", "bake", "stir", "chop", "385"]),
                min_size=0, max_size=6))
def test_property_vocab_encode_decode_identity(tokens):
    vocab = Vocabulary(["mix", "bake", "stir", "chop", "385"])
    assert vocab.decode(vocab.encode(tokens)) == tokens
