"""A complete quality-observability incident, end to end.

Stands up the resilient search service on a tiny synthetic corpus with
the full quality loop attached — golden probes, embedding-drift
monitor, burn-rate SLO alerting, flight recorder — then injects a
*stale hot-swap*: the service receives a self-consistent corpus from
the wrong split.  Every canary passes and latency stays green, but the
probe's online MedR explodes, the quality SLO burns through its
budget, the alert fires, and the flight recorder dumps a post-mortem
bundle.  Finally the recorded telemetry is rendered with the same
code path as ``repro monitor``:

    python examples/quality_monitor_demo.py --out demo-out

No training runs: the demo uses a deterministic histogram embedder, so
it finishes in seconds.
"""

import argparse
import pathlib

import numpy as np

from repro.cli import main as cli_main
from repro.core.engine import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.obs import (AlertManager, BurnRateWindow, DriftReference,
                       FlightRecorder, GoldenProbe, GoldenSet,
                       Telemetry, default_serving_slos)
from repro.serving import ResilientSearchService, ServiceConfig


class _Clock:
    """Manual clock so the burn-rate windows elapse instantly."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(float(seconds), 0.0)


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Deterministic embedder: normalized ingredient-id histograms."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="quality-monitor-demo",
                        help="output directory (telemetry + bundles)")
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    jsonl = out / "telemetry.jsonl"
    jsonl.unlink(missing_ok=True)

    print("== Setting up the service with the quality loop attached ==")
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)

    clock = _Clock()
    telemetry = Telemetry(jsonl_path=jsonl, clock=clock)
    service = ResilientSearchService(
        engine, ServiceConfig(deadline=5.0), clock=clock,
        sleep=clock.sleep, telemetry=telemetry)

    # Training-time drift reference for the live corpus.
    image_emb, recipe_emb = engine.model.encode_corpus(corpus)
    service.drift.start_generation(
        DriftReference.from_embeddings(recipe_emb, image_emb))

    golden = GoldenSet.from_engine(engine, size=16, seed=5)
    probe = GoldenProbe(service, golden, registry=telemetry.registry,
                        events=telemetry.events, clock=clock)
    probe.attach()

    recorder = FlightRecorder(telemetry, out / "flight",
                              drift=service.drift, probe=probe,
                              clock=clock, min_interval_s=0.0)
    manager = AlertManager(
        telemetry.registry, default_serving_slos(medr_ceiling=5.0),
        windows=(BurnRateWindow("page", 60.0, 300.0, 2.0),),
        clock=clock, events=telemetry.events,
        on_fire=[recorder.on_alert])

    def traffic(n: int = 30) -> None:
        indices = engine.corpus.recipe_indices
        for i in range(n):
            recipe = dataset[int(indices[i % len(indices)])]
            assert service.search_by_recipe(recipe, k=5).ok
            clock.sleep(1.0)

    print("== Phase 1: healthy steady state ==")
    traffic()
    print(f"   probe   {probe.run().summary()}")
    for _ in range(3):
        clock.sleep(20.0)
        manager.evaluate()
    print(f"   alerts firing: "
          f"{[n for n, a in manager.alerts.items() if a.firing]}")

    print("== Phase 2: stale hot-swap (wrong split, canaries pass) ==")
    report = service.swap_corpus(featurizer.encode_split(dataset,
                                                         "train"))
    print(f"   swap ok={report.ok} generation={report.generation} "
          f"baseline={report.quality_baseline}")

    print("== Phase 3: the probe catches what the canaries missed ==")
    traffic()
    print(f"   probe   {probe.run().summary()}")
    for _ in range(6):
        clock.sleep(20.0)
        if any(a.firing for a in manager.evaluate()):
            break
    firing = [n for n, a in manager.alerts.items() if a.firing]
    print(f"   alerts firing: {firing}")
    for bundle in recorder.bundles:
        print(f"   flight bundle: {bundle}")

    telemetry.close()

    print()
    print(f"== Rendering the trace ({jsonl}) via `repro monitor` ==")
    status = cli_main(["monitor", "--jsonl", str(jsonl)])
    print(f"\nmonitor exit status: {status} (1 = an alert is firing)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
