"""Dietary filtering by removing ingredients (paper §5.3, Table 5).

For users with dietary restrictions the paper edits a recipe — dropping
one ingredient from the list and deleting every instruction mentioning
it — and shows the retrieved dishes no longer contain it. This example
runs the same experiment for any ingredient:

    python examples/dietary_filter.py --ingredient broccoli
"""

import argparse

from repro.analysis import remove_ingredient_comparison
from repro.experiments import ExperimentRunner


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ingredient", default="broccoli")
    parser.add_argument("--scale", default="test")
    parser.add_argument("--top-k", type=int, default=4)
    args = parser.parse_args(argv)

    print(f"Training AdaMine at scale {args.scale!r} ...")
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    model = runner.scenario("adamine")
    dataset, corpus = runner.dataset, runner.test_corpus

    rows = [row for row in range(len(corpus))
            if args.ingredient in dataset[
                int(corpus.recipe_indices[row])].ingredients]
    if not rows:
        raise SystemExit(f"no test recipe contains {args.ingredient!r}; "
                         "try --ingredient butter")

    row = rows[0]
    recipe = dataset[int(corpus.recipe_indices[row])]
    print(f"\nQuery recipe: {recipe.title!r}")
    print(f"  ingredients: {', '.join(recipe.ingredients)}")

    result = remove_ingredient_comparison(
        model, runner.featurizer, dataset, corpus, row,
        args.ingredient, k=args.top_k)

    def show(hits, label):
        print(f"\nTop-{args.top_k} dishes {label}:")
        for hit in hits:
            retrieved = dataset[hit.recipe_index]
            marker = ("contains " + args.ingredient
                      if args.ingredient in retrieved.ingredients
                      else "free of " + args.ingredient)
            print(f"  {retrieved.title:<28} ({marker})")

    show(result.hits_with, f"WITH {args.ingredient} in the query")
    show(result.hits_without, f"AFTER removing {args.ingredient}")
    print(f"\ncontainment: {result.with_rate:.0%} -> "
          f"{result.without_rate:.0%} "
          f"(removal effect {result.removal_effect:+.0%})")


if __name__ == "__main__":
    main()
