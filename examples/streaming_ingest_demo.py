"""Streaming ingest surviving a crash, end to end.

Stands up the resilient search service on a tiny synthetic corpus with
a write-ahead ingest log attached, then walks the whole durability
story: recipes stream in (and one is deleted) while queries keep
answering; the process "dies" halfway through appending a record,
leaving a torn tail on disk; a fresh service over the same log
directory truncates the tear, replays every acknowledged write to a
bitwise-identical state, and keeps serving; finally a canary-validated
compaction folds the deltas into a new frozen base without the query
stream ever seeing a recipe twice — or losing one.

    python examples/streaming_ingest_demo.py [--log-dir DIR]

No training runs: the demo uses a deterministic histogram embedder, so
it finishes in seconds.
"""

import argparse
import pathlib
import tempfile

import numpy as np

from repro.core.engine import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.robustness import SimulatedCrash, TornWrite
from repro.serving import (IngestConfig, ResilientSearchService,
                           ServiceConfig)


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Deterministic embedder: normalized ingredient-id histograms."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def build_world():
    dataset = generate_dataset(DatasetConfig(
        num_pairs=80, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    return dataset, featurizer


def build_service(dataset, featurizer, log_dir, faults=None):
    corpus = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)
    return ResilientSearchService(
        engine, ServiceConfig(),
        ingest_log=log_dir,
        ingest_config=IngestConfig(fsync_every=1),
        ingest_faults=faults)


def corpus_scan(service, recipe):
    """All live items for one query, widest k."""
    response = service.search_by_recipe(recipe, k=500)
    assert response.outcome.status == "ok", response.outcome.error
    return [r.corpus_row for r in response.results]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--log-dir", default=None,
                        help="ingest log directory (default: a "
                             "temporary directory)")
    args = parser.parse_args(argv)
    if args.log_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="ingest-demo-")
        log_dir = pathlib.Path(scratch.name) / "wal"
    else:
        log_dir = pathlib.Path(args.log_dir)

    dataset, featurizer = build_world()
    fresh = list(dataset.split("train"))[:6]
    probe = fresh[0]

    # -- 1. live writes while serving ---------------------------------
    print("== streaming ingest ==")
    service = build_service(dataset, featurizer, log_dir,
                            faults=TornWrite(record=5))
    base_live = len(corpus_scan(service, probe))
    print(f"frozen base: {base_live} recipes, log at {log_dir}")
    acked = []
    for recipe in fresh[:4]:
        outcome = service.ingest(recipe)
        assert outcome.status == "ok", outcome.error
        acked.append(outcome.item_id)
        print(f"  ingested {recipe.title!r} as item {outcome.item_id} "
              f"(durable={outcome.durable})")
    victim = acked.pop(1)
    assert service.delete(victim).status == "ok"
    print(f"  deleted item {victim}")
    expected_live = set(corpus_scan(service, probe))
    print(f"live corpus while streaming: {len(expected_live)} recipes")

    # -- 2. kill -9 mid-append ----------------------------------------
    print("== crash mid-append ==")
    try:
        service.ingest(fresh[4])  # record 5 tears halfway
        raise AssertionError("the injected crash did not fire")
    except SimulatedCrash as exc:
        print(f"  process died: {exc}")

    # -- 3. recovery --------------------------------------------------
    print("== recovery ==")
    revived = build_service(dataset, featurizer, log_dir)
    recovery = revived.ingestor.recovery
    print(f"  replayed {recovery['replayed_records']} records, "
          f"truncated {recovery['truncated_bytes']} torn bytes")
    assert recovery["truncated_bytes"] > 0
    recovered_live = set(corpus_scan(revived, probe))
    assert recovered_live == expected_live, "acknowledged writes lost"
    print(f"  every acknowledged write survived "
          f"({len(recovered_live)} live recipes) -- the torn, "
          f"unacknowledged one did not")
    retried = revived.ingest(fresh[4])
    assert retried.status == "ok"
    expected_live.add(retried.item_id)
    print(f"  log healed: retried ingest landed as item "
          f"{retried.item_id}")

    # -- 4. canary-validated compaction -------------------------------
    print("== compaction ==")
    before = corpus_scan(revived, probe)
    report = revived.compact_ingest()
    assert report.ok, report.failures
    after = corpus_scan(revived, probe)
    assert before == after, "the fold changed what queries see"
    assert set(after) == expected_live
    status = revived.ingestor.status()
    print(f"  folded to epoch {status['epoch']} "
          f"(base {status['base']}), {report.canaries_run} canaries "
          f"passed, log lag {status['log']['lag_records']} records")
    print(f"  query stream observed every recipe exactly once across "
          f"the swap")
    print("quality green: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
