"""An alert-triggered profile capture, end to end.

Stands up the resilient search service on a tiny synthetic corpus,
then injects the two halves of a classic brownout: a *straggling
shard* (every replica attempt on shard 0 stalls) and a *hot-spinning
thread* in the shard-worker pool.  The latency SLO burns through its
budget, the alert fires, and the ``AlertManager.on_fire`` hooks do
the rest — the sampling profiler opens a bounded capture window and
the flight recorder dumps an incident bundle.  Once the window
closes, a post-capture bundle lands with the full evidence:

* ``profile.txt``   — collapsed stacks blaming the spin on the
  shard-worker role, plus the blocked time on the straggling stage;
* ``memory.json``   — the memory ledger's itemized bytes (index,
  rings, WAL, cache) against process RSS.

The folded profile is then rendered with the same code path as
``repro profile top`` / ``repro profile flame``:

    python examples/profiler_demo.py --out profiler-demo-out

No training runs: the demo uses a deterministic histogram embedder,
so it finishes in a few seconds of (real) wall clock — the sampler
needs real time to sample.
"""

import argparse
import pathlib
import shutil
import threading
import time

import numpy as np

from repro.cli import main as cli_main
from repro.core.engine import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.obs import (AlertManager, BurnRateWindow, FlightRecorder,
                       Telemetry, default_serving_slos)
from repro.robustness import SlowShard
from repro.serving import (ClusterConfig, ResilientSearchService,
                           ServiceConfig)


class _ManagerClock:
    """Manual clock for the burn-rate windows; the service and the
    profiler run on real time, only SLO bookkeeping fast-forwards."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(float(seconds), 0.0)


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Deterministic embedder: normalized ingredient-id histograms."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


class _FireAlways:
    def __contains__(self, query_id) -> bool:
        return True


def _spin(stop_event, sink=[0.0]):
    x = 1.0001
    while not stop_event.is_set():
        for __ in range(2000):
            x = x * x % 1.7
        sink[0] = x


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="profiler-demo-out",
                        help="output directory (telemetry + bundles)")
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    jsonl = out / "telemetry.jsonl"
    jsonl.unlink(missing_ok=True)
    shutil.rmtree(out / "flight", ignore_errors=True)

    print("== Setting up a 2-shard service with profiling attached ==")
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)

    fault = SlowShard(queries=(), shard_id=0, delay=0.3,
                      sleep=time.sleep)
    telemetry = Telemetry(jsonl_path=jsonl)
    service = ResilientSearchService(
        engine,
        ServiceConfig(deadline=5.0,
                      cluster=ClusterConfig(num_shards=2)),
        telemetry=telemetry, cluster_faults=fault)
    service.profiler.window_s = 1.5       # bounded capture per alert

    recorder = FlightRecorder(telemetry, out / "flight",
                              profiler=service.profiler,
                              memory=service.memory,
                              min_interval_s=0.0)
    manager_clock = _ManagerClock()
    manager = AlertManager(
        telemetry.registry, default_serving_slos(),
        windows=(BurnRateWindow("page", 60.0, 300.0, 2.0),),
        clock=manager_clock, events=telemetry.events,
        on_fire=[service.profiler.on_alert, recorder.on_alert])

    indices = engine.corpus.recipe_indices

    def traffic(n: int) -> None:
        for i in range(n):
            recipe = dataset[int(indices[i % len(indices)])]
            assert service.search_by_recipe(recipe, k=5).ok

    print("== Phase 1: healthy steady state ==")
    traffic(30)
    for __ in range(3):
        manager_clock.sleep(20.0)
        manager.evaluate()
    print(f"   alerts firing: "
          f"{[n for n, a in manager.alerts.items() if a.firing]}")
    print(f"   profiler running: {service.profiler.running}")

    print("== Phase 2: straggling shard + hot-spinning worker ==")
    fault.queries = _FireAlways()         # shard 0 stalls 300 ms
    stop_spin = threading.Event()
    spinner = threading.Thread(target=_spin, args=(stop_spin,),
                               name="shard-hot-9", daemon=True)
    spinner.start()
    traffic(8)                            # every index stage now slow

    print("== Phase 3: the SLO burns, the alert opens a window ==")
    fired = []
    for __ in range(6):
        manager_clock.sleep(20.0)
        fired = [a.slo.name for a in manager.evaluate() if a.firing]
        if fired:
            break
    print(f"   alerts firing: {fired}")
    print(f"   profiler running: {service.profiler.running} "
          f"(bounded window, {service.profiler.window_s:.1f}s)")

    # Keep the incident load up while the capture window samples it.
    traffic(5)
    deadline = time.monotonic() + 10.0
    while service.profiler.running and time.monotonic() < deadline:
        time.sleep(0.05)
    stop_spin.set()
    spinner.join()
    fault.queries = ()
    print(f"   window closed after "
          f"{service.profiler.snapshot()['samples']} samples")

    print("== Phase 4: post-capture flight bundle ==")
    bundle = recorder.dump(reason="profile-capture-complete")
    for name in sorted(p.name for p in bundle.iterdir()):
        print(f"   {bundle / name}")
    snap = service.profiler.snapshot()
    stages = {stage: dict(states)
              for stage, states in snap["stages"].items()}
    print(f"   stages sampled: {stages}")
    memory = service.memory.snapshot()
    print(f"   rss {memory['rss_bytes'] / 1e6:.1f} MB, tracked "
          f"{memory['tracked_bytes'] / 1e6:.3f} MB across "
          f"{len(memory['components'])} components")

    telemetry.close()

    print()
    print("== Rendering the capture via `repro profile top` ==")
    cli_main(["profile", "top",
              "--profile", str(bundle / "profile.txt")])
    print()
    print("== And as a flame tree (`repro profile flame`) ==")
    cli_main(["profile", "flame",
              "--profile", str(bundle / "profile.txt"),
              "--min-share", "0.05"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
