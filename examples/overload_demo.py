"""Surviving a 10x traffic storm: brownout, fairness, and recovery.

Stands up the resilient search service with the adaptive admission
plane (AIMD concurrency limit + per-tenant fair queue + brownout
degradation ladder) and drives it with an open-loop load generator.
Two tenants share the box — an interactive "mobile" tenant and a
low-priority "batch" crawler — and the embed stage slows down with
concurrency, so overload genuinely degrades the backend instead of
just queueing politely.

Midway through, offered load spikes to 10x capacity.  The demo then
shows the whole overload story: the AIMD limiter walks the
concurrency cap down to the knee, the brownout ladder engages step by
step (hedging off -> smaller k -> model-free degraded mode -> shed
background traffic), excess work is shed with per-tenant accounting
instead of timing out, and once the storm passes the ladder walks
back down and a fresh request is answered at full quality.

    python examples/overload_demo.py [--factor N] [--duration S]

No training runs: the demo uses a deterministic histogram embedder,
so it finishes in a few seconds of (real-time) load generation.
"""

import argparse
import time

import numpy as np

from repro.core.engine import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.obs import Telemetry
from repro.robustness.faults import OverloadStorm, SlowEmbedUnderLoad
from repro.serving import (AdmissionConfig, BrownoutConfig, LoadGenerator,
                           ResilientSearchService, RetryPolicy,
                           ServiceConfig, TenantLoad, TenantPolicy)


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Deterministic embedder: normalized ingredient-id histograms."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def build_engine() -> RecipeSearchEngine:
    dataset = generate_dataset(DatasetConfig(
        num_pairs=80, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8, sentence_dim=8).fit(dataset)
    corpus = featurizer.encode_split(dataset, "test")
    return RecipeSearchEngine(_StubModel(), featurizer, dataset, corpus)


def build_service(engine) -> ResilientSearchService:
    admission = AdmissionConfig(
        tenants=(TenantPolicy("mobile", weight=2.0),
                 TenantPolicy("batch", weight=1.0,
                              criticality="background")),
        initial_limit=8, min_limit=2, max_limit=16,
        target_p95_s=0.08, evaluate_every=8, latency_window=64,
        max_queue_depth=64,
        brownout=BrownoutConfig(engage_pressure=1.5,
                                release_pressure=0.8,
                                dwell_s=0.05, release_dwell_s=0.1))
    # Congestion-collapse coupling: every request holding a slot makes
    # the embed stage slower for everyone, so the "right" concurrency
    # is something the limiter has to discover, not a constant.
    box = []
    fault = SlowEmbedUnderLoad(
        lambda: box[0].admission.inflight if box else 0,
        delay_per_inflight_s=0.02)
    service = ResilientSearchService(
        engine,
        ServiceConfig(deadline=0.12, admission=admission,
                      retry=RetryPolicy(max_attempts=2,
                                        base_delay=0.001, jitter=0.0)),
        telemetry=Telemetry(), faults=fault)
    box.append(service)
    return service


def known_ingredients(engine) -> list:
    vocab = engine.featurizer.ingredient_vocab
    names = []
    for recipe in engine.dataset.split("train"):
        for name in recipe.ingredients:
            if name.replace(" ", "_") in vocab and name not in names:
                names.append(name)
            if len(names) >= 2:
                return names
    return names


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=float, default=10.0,
                        help="storm multiplier over base load")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="total load-generation window (seconds)")
    args = parser.parse_args(argv)

    print("building corpus and adaptive service ...")
    engine = build_engine()
    service = build_service(engine)
    query = known_ingredients(engine)
    storm_start = args.duration * 0.1
    storm_end = args.duration * 0.5

    def request_fn(tenant, criticality):
        return service.search_by_ingredients(
            query, k=5, tenant=tenant, criticality=criticality)

    print(f"\n== {args.factor:g}x storm "
          f"(t={storm_start:.1f}s..{storm_end:.1f}s of "
          f"{args.duration:.1f}s; embed slows with concurrency) ==")
    report = LoadGenerator(
        request_fn,
        [TenantLoad("mobile", 25.0),
         TenantLoad("batch", 8.0, criticality="background")],
        duration_s=args.duration,
        shapers=[OverloadStorm(args.factor, start_s=storm_start,
                               end_s=storm_end)]).run()

    print("\nper-tenant goodput:")
    print(report.render())

    print("\nbrownout ladder transitions:")
    records = service.telemetry.events.of_type("brownout")
    if not records:
        print("  (ladder never engaged — try a bigger --factor)")
    for record in records:
        arrow = "+" if record["direction"] == "engage" else "-"
        print(f"  [{arrow}] {record['direction']:<7} "
              f"{record['step']:<15} -> level {record['level']}")

    snapshot = service.admission.snapshot()
    print(f"\nAIMD concurrency limit after the storm: "
          f"{snapshot['limit']:.1f} (started at 8)")

    # Recovery: a post-storm trickle keeps feeding cool observations so
    # the ladder can walk back down (each release step has a dwell).
    print("\n== recovery ==")
    deadline = time.monotonic() + 5.0
    while (service.admission.snapshot()["brownout_level"] > 0
           and time.monotonic() < deadline):
        service.search_by_ingredients(query, k=5, tenant="mobile")
        time.sleep(0.05)
    level = service.admission.snapshot()["brownout_level"]
    print(f"brownout level after cool-down: {level}")

    response = service.search_by_ingredients(query, k=3, tenant="mobile")
    print(f"post-storm request: status={response.outcome.status}, "
          f"{len(response.results)} results at full quality")
    shed = {t.tenant: t.shed for t in report.tenants.values()}
    print(f"requests shed during the storm, charged per tenant: {shed}")
    print("\nthe service never fell over: excess load was shed with "
          "per-tenant accounting,\nquality degraded one rung at a "
          "time, and full quality came back on its own.")


if __name__ == "__main__":
    main()
