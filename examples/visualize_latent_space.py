"""Visualize the learned latent space (the paper's Figure 3, as files).

Trains AdaMine and AdaMine_ins, embeds test pairs from the five most
frequent classes, maps them to 2-D with the built-in t-SNE and writes
Figure-3-style scatter images (PPM, viewable anywhere) plus a
Figure-4-style λ-curve chart:

    python examples/visualize_latent_space.py --out figures/
"""

import argparse
import pathlib

import numpy as np

from repro.analysis import line_plot, scatter_plot, summarize_latent_space
from repro.data import save_ppm
from repro.experiments import ExperimentRunner, figure3, figure4


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="figures")
    parser.add_argument("--scale", default="test")
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    print(f"Training scenarios at scale {args.scale!r} ...")
    runner = ExperimentRunner(scale=args.scale, verbose=True)

    result = figure3.run(runner, pairs_per_class=12, num_classes=5,
                         tsne_iterations=200)
    for side in (result.adamine_ins, result.adamine):
        n_pairs = len(side.class_ids) // 2
        traces = np.column_stack([np.arange(n_pairs),
                                  np.arange(n_pairs) + n_pairs])
        image = scatter_plot(side.coordinates, side.class_ids,
                             size=384, pair_traces=traces)
        path = out / f"figure3_{side.scenario}.ppm"
        save_ppm(image, path)
        print(f"wrote {path}  (kNN purity {side.knn_purity:.2f}, "
              f"pair distance {side.pair_distance:.3f})")

    # latent-space health of the full model
    model = runner.scenario("adamine")
    image_emb, recipe_emb = model.encode_corpus(runner.test_corpus)
    print("latent space:", summarize_latent_space(image_emb, recipe_emb))

    print("Sweeping lambda for the Figure 4 curve ...")
    points = figure4.run(runner, lambdas=(0.1, 0.3, 0.5, 0.7, 0.9))
    chart = line_plot(np.array([p.lambda_sem for p in points]),
                      np.array([p.medr for p in points]), size=384)
    path = out / "figure4_lambda.ppm"
    save_ppm(chart, path)
    print(f"wrote {path}")
    for point in points:
        print(f"  lambda={point.lambda_sem:.1f}  MedR={point.medr:.1f}")


if __name__ == "__main__":
    main()
