"""Quickstart: train AdaMine on a small synthetic Recipe1M and query it.

Runs in well under a minute on a laptop CPU:

    python examples/quickstart.py

Steps: generate data -> fit the text featurizer -> build the dual-branch
model -> train with the double-triplet adaptive-mining objective ->
evaluate cross-modal retrieval -> run one recipe-to-image query.
"""

import numpy as np

from repro.core import Trainer, TrainingConfig, build_scenario
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.retrieval import evaluate_embeddings
from repro.analysis import recipe_to_image


def main() -> None:
    # 1. A small synthetic Recipe1M: image-recipe pairs from 8 classes,
    #    half of them carrying a class label (like the real dataset).
    print("Generating synthetic Recipe1M ...")
    dataset = generate_dataset(DatasetConfig(
        num_pairs=400, num_classes=8, image_size=16, seed=0))
    print(dataset.summary())

    # 2. Pretrain the frozen text encoders (word2vec on ingredient
    #    co-occurrence, SkipThoughtLite on instruction sentences).
    print("\nFitting featurizer (word2vec + skip-thought-lite) ...")
    featurizer = RecipeFeaturizer(word_dim=16, sentence_dim=16).fit(dataset)
    train = featurizer.encode_split(dataset, "train")
    val = featurizer.encode_split(dataset, "val")
    test = featurizer.encode_split(dataset, "test")

    # 3. Build the full AdaMine scenario and train it.
    config = TrainingConfig(epochs=10, freeze_epochs=0, batch_size=32,
                            learning_rate=3e-3, augment=False,
                            eval_bag_size=len(val), eval_num_bags=1)
    model, config = build_scenario(
        "adamine", featurizer, num_classes=len(dataset.taxonomy),
        image_size=16, base_config=config, latent_dim=32)
    print(f"\nTraining AdaMine ({model.num_parameters():,} parameters) ...")
    trainer = Trainer(model, config)
    for stats in trainer.fit(train, val):
        print(f"  epoch {stats.epoch:2d}  loss {stats.train_loss:.3f}  "
              f"val MedR {stats.val_medr:5.1f}  "
              f"active triplets {stats.instance_active_fraction:.0%}")

    # 4. Evaluate with the paper's protocol (MedR / R@K over bags).
    image_emb, recipe_emb = model.encode_corpus(test)
    result = evaluate_embeddings(image_emb, recipe_emb,
                                 bag_size=len(test), num_bags=1)
    print(f"\nTest retrieval over {len(test)} pairs "
          f"(chance MedR ~ {len(test) / 2:.0f}):")
    print(result.summary())

    # 5. One qualitative query: top-5 images for a recipe.
    query = recipe_to_image(model, dataset, test, np.array([0]), k=5)[0]
    print(f"\nTop-5 images for query {query.query_title!r}:")
    for rank, hit in enumerate(query.hits, start=1):
        recipe = dataset[hit.recipe_index]
        print(f"  {rank}. {recipe.title:<28} [{hit.relation}] "
              f"distance {hit.distance:.3f}")


if __name__ == "__main__":
    main()
