"""SIGTERM mid-load: the gateway's graceful-drain story, end to end.

Boots the hardened HTTP gateway over the resilient search service
(real loopback sockets, per-tenant API keys, streaming-ingest WAL),
fires mixed-tenant traffic at it — searches from an interactive
"mobile" tenant and a background "batch" crawler, plus a stream of
durable ingests — and then delivers a real ``SIGTERM`` while requests
are in flight.

The demo then audits the drain contract:

* every accepted request either completed (2xx) or was refused with a
  clean 503 — zero connections were reset mid-response;
* the drain flushed the write-ahead log, so a crash-only restart over
  the same directory recovers **every acknowledged ingest**;
* the restarted service can immediately serve the streamed rows.

    python examples/gateway_demo.py [--duration S] [--rate RPS]

No training runs: a deterministic histogram embedder stands in for
the model, so the demo is a few seconds of real-socket traffic.
"""

import argparse
import http.client
import json
import os
import pathlib
import signal
import tempfile
import threading
import time
from collections import Counter

import numpy as np

from repro.core.engine import RecipeSearchEngine
from repro.data import DatasetConfig, RecipeFeaturizer, generate_dataset
from repro.serving import (CacheConfig, Gateway, GatewayConfig,
                           ResilientSearchService, ServiceConfig,
                           recipe_to_payload)

HOST = "127.0.0.1"
API_KEYS = {"sk-mobile": "mobile", "sk-batch": "batch"}


class _Embedded:
    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data


class _StubModel:
    """Deterministic embedder: normalized ingredient-id histograms."""

    def __init__(self, dim: int = 16):
        self.dim = int(dim)

    def _recipe_rows(self, ids, lengths) -> np.ndarray:
        ids, lengths = np.asarray(ids), np.asarray(lengths)
        out = np.zeros((len(ids), self.dim))
        for row in range(len(ids)):
            n = max(int(lengths[row]), 1)
            hist = np.bincount(ids[row][:n] % self.dim,
                               minlength=self.dim).astype(float) + 1e-3
            out[row] = hist / np.linalg.norm(hist)
        return out

    def embed_recipes(self, ingredient_ids, ingredient_lengths,
                      sentence_vectors, sentence_lengths) -> _Embedded:
        return _Embedded(self._recipe_rows(ingredient_ids,
                                           ingredient_lengths))

    def embed_images(self, images) -> _Embedded:
        flat = np.asarray(images).reshape(len(images), -1)
        hist = np.abs(flat[:, :self.dim]) + 1e-3
        return _Embedded(hist / np.linalg.norm(hist, axis=1,
                                               keepdims=True))

    def encode_corpus(self, corpus, batch_size: int = 256):
        recipe = self._recipe_rows(corpus.ingredient_ids,
                                   corpus.ingredient_lengths)
        return recipe.copy(), recipe


def build_world():
    dataset = generate_dataset(DatasetConfig(
        num_pairs=60, num_classes=4, image_size=8, seed=7))
    featurizer = RecipeFeaturizer(word_dim=8,
                                  sentence_dim=8).fit(dataset)
    return dataset, featurizer


def build_service(dataset, featurizer, log_dir) -> ResilientSearchService:
    corpus = featurizer.encode_split(dataset, "test")
    engine = RecipeSearchEngine(_StubModel(), featurizer, dataset,
                                corpus)
    return ResilientSearchService(
        engine, ServiceConfig(deadline=2.0, max_inflight=32),
        ingest_log=log_dir)


def query_ingredients(dataset, featurizer) -> list:
    vocab = featurizer.ingredient_vocab
    names = []
    for recipe in dataset.split("train"):
        for name in recipe.ingredients:
            if name.replace(" ", "_") in vocab and name not in names:
                names.append(name)
            if len(names) >= 2:
                return names
    return names


def one_request(port, method, path, body, headers):
    """Returns ``(kind, status, body)``; kind judges completeness."""
    base = {"Connection": "close"}
    base.update(headers)
    raw = None
    if body is not None:
        raw = json.dumps(body).encode()
        base["Content-Type"] = "application/json"
    try:
        conn = http.client.HTTPConnection(HOST, port, timeout=10.0)
        conn.request(method, path, body=raw, headers=base)
        reply = conn.getresponse()
        data = reply.read()
        conn.close()
    except OSError:
        return "refused", None, None  # nothing accepted: clean refusal
    except http.client.HTTPException:
        return "broken", None, None   # accepted then reset: violation
    try:
        return "complete", reply.status, json.loads(data)
    except ValueError:
        return "broken", reply.status, None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--duration", type=float, default=2.0,
                        help="seconds of load before SIGTERM")
    parser.add_argument("--rate", type=float, default=40.0,
                        help="per-tenant offered load, requests/second")
    args = parser.parse_args()

    dataset, featurizer = build_world()
    log_dir = pathlib.Path(tempfile.mkdtemp(prefix="gateway-demo-"))
    ingredients = query_ingredients(dataset, featurizer)
    train_recipes = list(dataset.split("train"))

    print("=== 1. boot: gateway over the resilient service ===")
    service = build_service(dataset, featurizer, log_dir)
    gateway = Gateway(service, GatewayConfig(
        api_keys=API_KEYS, max_connections=128,
        cache=CacheConfig(ttl_s=60.0)))
    gateway.start()
    gateway.install_signal_handlers()
    port = gateway.port
    print(f"listening on {gateway.url}  tenants: "
          f"{sorted(API_KEYS.values())}  WAL: {log_dir}")

    print(f"\n=== 2. mixed-tenant load ({args.rate:g} rps/tenant) ===")
    outcomes = Counter()
    statuses = Counter()
    acked_ingests = []
    lock = threading.Lock()
    stop = threading.Event()

    def search_client(key, criticality):
        while not stop.is_set():
            kind, status, _ = one_request(
                port, "POST", "/search",
                {"ingredients": ingredients, "k": 3},
                {"X-Api-Key": key, "X-Criticality": criticality,
                 "X-Deadline-Ms": "1500"})
            with lock:
                outcomes[kind] += 1
                if status is not None:
                    statuses[status] += 1
            if kind == "refused":
                return  # listener is gone: drain reached the wire
            time.sleep(1.0 / args.rate)

    def ingest_client():
        for i, recipe in enumerate(train_recipes):
            if stop.is_set():
                return
            kind, status, body = one_request(
                port, "POST", "/ingest",
                {"recipe": recipe_to_payload(recipe)},
                {"X-Api-Key": "sk-batch"})
            with lock:
                outcomes[kind] += 1
                if status is not None:
                    statuses[status] += 1
                if kind == "complete" and status == 200 \
                        and body.get("durable"):
                    acked_ingests.append(body["item_id"])
            time.sleep(1.0 / args.rate)

    clients = [
        threading.Thread(target=search_client,
                         args=("sk-mobile", "user")),
        threading.Thread(target=search_client,
                         args=("sk-batch", "background")),
        threading.Thread(target=ingest_client),
    ]
    for thread in clients:
        thread.start()
    time.sleep(args.duration)

    print(f"\n=== 3. SIGTERM mid-load ===")
    drain_started = time.monotonic()
    os.kill(os.getpid(), signal.SIGTERM)
    gateway.wait_drained(timeout=15.0)
    drain_ms = (time.monotonic() - drain_started) * 1000.0
    stop.set()
    for thread in clients:
        thread.join(timeout=5.0)
    gateway.restore_signal_handlers()

    print(f"drained in {drain_ms:.0f}ms "
          f"(reason: {gateway.describe()['drain_reason']})")
    total = sum(outcomes.values())
    print(f"requests: {total} total  "
          + "  ".join(f"{k}={v}" for k, v in sorted(outcomes.items())))
    print("statuses: " + "  ".join(
        f"{code}={count}" for code, count in sorted(statuses.items())))
    print(f"acked ingests before drain: {len(acked_ingests)}")
    dropped = outcomes["broken"]
    print(f"dropped in-flight responses: {dropped} "
          + ("(drain contract held)" if dropped == 0
             else "(DRAIN CONTRACT VIOLATED)"))

    print("\n=== 4. crash-only restart: WAL recovery ===")
    revived = build_service(dataset, featurizer, log_dir)
    recovery = revived.ingestor.recovery
    recovered = [item for item in acked_ingests
                 if item in revived.ingestor.payloads]
    print(f"replayed {recovery['replayed_records']} WAL records  "
          f"truncated {recovery['truncated_bytes']} torn bytes")
    print(f"acked ingests recovered: {len(recovered)}"
          f"/{len(acked_ingests)}")
    response = revived.search_by_ingredients(ingredients, k=3)
    print(f"first post-restart search: {response.outcome.status} "
          f"({len(response.results)} results, "
          f"generation {response.generation})")

    ok = (dropped == 0 and len(recovered) == len(acked_ingests)
          and response.ok)
    print("\n" + ("demo PASSED: zero dropped responses, zero lost "
                  "acked ingests" if ok else "demo FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
