"""Compare AdaMine against the paper's baselines, with significance.

Trains AdaMine and PWC++ on the same corpus, fits linear CCA on fixed
features, evaluates all three with the paper's protocol, and runs a
paired bootstrap test on the headline comparison:

    python examples/compare_baselines.py --scale test
"""

import argparse

from repro.experiments import ExperimentRunner, format_results_table
from repro.retrieval import compare_models


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="test")
    args = parser.parse_args(argv)

    runner = ExperimentRunner(scale=args.scale, verbose=True)
    rows = [
        ("random", runner.random_result("10k")),
        ("cca", runner.cca_result("10k")),
        ("pwc_pp", runner.evaluate("pwc_pp", "10k")),
        ("adamine", runner.evaluate("adamine", "10k")),
    ]
    print()
    print(format_results_table(rows, title="Baselines (10k-style setup)"))

    adamine = runner.scenario("adamine")
    pwc = runner.scenario("pwc_pp")
    img_a, rec_a = adamine.encode_corpus(runner.test_corpus)
    img_b, rec_b = pwc.encode_corpus(runner.test_corpus)
    result = compare_models(img_a, rec_a, img_b, rec_b, metric="MedR",
                            num_samples=1000)
    verdict = "significant" if result.significant else "not significant"
    print(f"\nPaired bootstrap, AdaMine vs PWC++ (MedR "
          f"{result.value_a:.1f} vs {result.value_b:.1f}): "
          f"p = {result.p_value:.3f} ({verdict} at the 5% level)")


if __name__ == "__main__":
    main()
