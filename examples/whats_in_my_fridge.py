"""What's in my fridge? — ingredient-to-image search (paper §5.3).

The paper shows AdaMine can map a bare ingredient list into the latent
space and retrieve dishes that visually contain those ingredients —
"particularly useful when one would like to know what they can cook
using aliments available in their fridge".

    python examples/whats_in_my_fridge.py --ingredients broccoli chicken rice
"""

import argparse

import numpy as np

from repro.analysis import ingredient_to_image
from repro.experiments import ExperimentRunner


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ingredients", nargs="+",
                        default=["broccoli", "chicken", "rice"])
    parser.add_argument("--scale", default="test",
                        help="experiment scale: test | bench | full")
    parser.add_argument("--top-k", type=int, default=5)
    args = parser.parse_args(argv)

    print(f"Training AdaMine at scale {args.scale!r} ...")
    runner = ExperimentRunner(scale=args.scale, verbose=True)
    model = runner.scenario("adamine")

    for ingredient in args.ingredients:
        token = ingredient.replace(" ", "_")
        if token not in runner.featurizer.ingredient_vocab:
            print(f"\n'{ingredient}' never appears in the training "
                  "corpus - skipping")
            continue
        result = ingredient_to_image(
            model, runner.featurizer, runner.dataset, runner.test_corpus,
            ingredient, k=args.top_k)
        print(f"\nDishes retrieved for '{ingredient}' "
              f"(hit-rate {result.hit_rate:.0%}):")
        for hit, contains in zip(result.hits, result.containment):
            recipe = runner.dataset[hit.recipe_index]
            marker = "+" if contains else " "
            print(f"  [{marker}] {recipe.title:<28} "
                  f"ingredients: {', '.join(recipe.ingredients[:5])}")


if __name__ == "__main__":
    main()
